"""Unit tests for storage-layout address traces."""

import pytest

from repro.analysis import build_blockset, build_coarsenset
from repro.compression import compress
from repro.runtime import HASWELL, cds_trace, simulate_trace, treebased_trace
from repro.runtime.latency import locality_factor
from repro.runtime.trace import (
    cds_address_map,
    library_visit_sequence,
    matrox_visit_sequence,
    trace_from_sequence,
    treebased_address_map,
)
from repro.storage import build_cds, build_treebased


@pytest.fixture(scope="module")
def packed(points_2d, gaussian_kernel):
    res = compress(points_2d, gaussian_kernel, structure="h2-geometric",
                   tau=0.65, bacc=1e-5, leaf_size=32, seed=0)
    cs = build_coarsenset(res.tree, res.sranks, p=4, agg=2)
    nb = build_blockset(res.htree, 2, kind="near")
    fb = build_blockset(res.htree, 4, kind="far")
    cds = build_cds(res.factors, cs, nb, fb)
    tb = build_treebased(res.factors)
    return res, cds, tb


class TestVisitSequences:
    def test_matrox_sequence_covers_all_generators(self, packed):
        res, cds, _tb = packed
        seq = matrox_visit_sequence(cds)
        basis_visits = [k for kind, k in seq if kind == "basis"]
        # Upward + downward: every basis node visited exactly twice.
        active = [v for v in range(res.tree.num_nodes) if res.factors.srank(v) > 0]
        assert sorted(basis_visits) == sorted(active * 2)
        near_visits = [k for kind, k in seq if kind == "near"]
        assert sorted(near_visits) == sorted(res.factors.near_blocks)

    def test_library_sequence_covers_all_generators(self, packed):
        res, _cds, tb = packed
        seq = library_visit_sequence(res.factors)
        near_visits = [k for kind, k in seq if kind == "near"]
        assert sorted(near_visits) == sorted(res.factors.near_blocks)
        far_visits = [k for kind, k in seq if kind == "far"]
        assert sorted(far_visits) == sorted(res.factors.coupling)


class TestAddressMaps:
    def test_cds_addresses_disjoint(self, packed):
        _res, cds, _tb = packed
        amap = cds_address_map(cds)
        spans = sorted(amap.values())
        for (b1, n1), (b2, _n2) in zip(spans, spans[1:], strict=False):
            assert b1 + n1 <= b2

    def test_tb_addresses_disjoint(self, packed):
        _res, _cds, tb = packed
        amap = treebased_address_map(tb, shuffle=True, seed=0)
        spans = sorted(amap.values())
        for (b1, n1), (b2, _n2) in zip(spans, spans[1:], strict=False):
            assert b1 + n1 <= b2

    def test_tb_shuffle_changes_layout(self, packed):
        _res, _cds, tb = packed
        a = treebased_address_map(tb, shuffle=True, seed=0)
        b = treebased_address_map(tb, shuffle=True, seed=1)
        assert a != b

    def test_cds_visit_order_is_address_order(self, packed):
        """The defining CDS property: visiting in schedule order walks the
        buffers monotonically (first pass over each buffer)."""
        _res, cds, _tb = packed
        amap = cds_address_map(cds)
        near_bases = [amap[("near", p)][0] for p in cds.near_visit_order()]
        assert near_bases == sorted(near_bases)

    def test_trace_line_granularity(self, packed):
        _res, cds, _tb = packed
        amap = cds_address_map(cds)
        seq = [("basis", next(iter(cds.basis_offset)))]
        tr = trace_from_sequence(amap, seq, line_bytes=64)
        base, nbytes = amap[seq[0]]
        assert len(tr) == (base + nbytes - 1) // 64 - base // 64 + 1


class TestLocalityComparison:
    def test_cds_locality_beats_treebased(self, packed):
        """The core Figure 6 mechanism: CDS trace must show a lower
        average memory access latency than tree-based storage."""
        _res, cds, tb = packed
        m = HASWELL.scaled_caches(600 / 100_000)
        loc_cds = locality_factor(simulate_trace(cds_trace(cds), m), m)
        loc_tb = locality_factor(simulate_trace(treebased_trace(tb), m), m)
        assert loc_cds < loc_tb

    def test_traces_same_byte_volume(self, packed):
        """Both layouts store exactly the same generator bytes; only order
        and placement differ (trace lengths may differ slightly from line
        straddling and page padding)."""
        _res, cds, tb = packed
        cds_bytes = sum(n for _b, n in cds_address_map(cds).values())
        tb_bytes = sum(n for _b, n in treebased_address_map(tb).values())
        assert cds_bytes == tb_bytes
        n_cds = len(cds_trace(cds))
        n_tb = len(treebased_trace(tb))
        assert abs(n_cds - n_tb) <= 0.1 * n_cds  # only boundary-line slack
