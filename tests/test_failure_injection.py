"""Failure-injection tests: malformed inputs must fail fast and clearly.

A downstream adopter's first contact with the library is often a wrong
shape or a bad parameter; every public entry point should reject those with
an actionable ValueError instead of a deep NumPy broadcast error.
"""

import numpy as np
import pytest

from repro import Inspector, PlanStoreError, inspector, load_hmatrix
from repro.compression import interpolative_decomposition
from repro.core.evaluation import evaluate_reference
from repro.sampling import build_sampling_plan
from repro.tree import build_cluster_tree
from repro.tree.cluster_tree import ClusterTree


class TestPointValidation:
    def test_empty_points(self):
        with pytest.raises(ValueError):
            inspector(np.zeros((0, 2)), kernel="gaussian")

    def test_nan_points(self):
        pts = np.random.default_rng(0).random((50, 2))
        pts[7, 1] = np.nan
        with pytest.raises(ValueError, match="finite"):
            inspector(pts, kernel="gaussian")

    def test_inf_points(self):
        pts = np.random.default_rng(0).random((50, 2))
        pts[3, 0] = np.inf
        with pytest.raises(ValueError, match="finite"):
            build_cluster_tree(pts)

    def test_3d_array_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            build_cluster_tree(np.zeros((4, 4, 4)))

    def test_1d_points_promoted(self):
        """1-D input is a valid d=1 point set, not an error."""
        tree = build_cluster_tree(np.linspace(0, 1, 40), leaf_size=8)
        assert tree.dim == 1


class TestParameterValidation:
    def test_bad_bacc(self, points_2d):
        # Validation moved up front: a bad plan fails at construction,
        # not deep inside the compression sweep.
        with pytest.raises(ValueError, match="bacc"):
            Inspector(bacc=-1e-5, leaf_size=32)

    def test_bad_structure(self, points_2d):
        with pytest.raises(ValueError, match="unknown structure"):
            inspector(points_2d, kernel="gaussian", structure="h5")

    def test_bad_kernel_name(self, points_2d):
        with pytest.raises(KeyError, match="unknown kernel"):
            inspector(points_2d, kernel="rbf-typo")

    def test_bad_sampling_k(self, points_2d):
        tree = build_cluster_tree(points_2d, leaf_size=32)
        # k is clamped to N-1 internally; only a degenerate tree fails.
        plan = build_sampling_plan(tree, k=10**9, seed=0)
        assert plan.k == len(points_2d) - 1

    def test_id_on_garbage(self):
        with pytest.raises(ValueError):
            interpolative_decomposition(np.array([1.0, 2.0]))  # 1-D


class TestEvaluationInputs:
    def test_wrong_w_rows(self, hmatrix_2d):
        with pytest.raises(ValueError, match="rows"):
            hmatrix_2d.matmul(np.zeros((hmatrix_2d.dim + 1, 2)))

    def test_reference_wrong_rows(self, hmatrix_2d):
        with pytest.raises(ValueError, match="rows"):
            evaluate_reference(hmatrix_2d.factors,
                               np.zeros((3, 2)))

    def test_w_dtype_coerced_not_crash(self, hmatrix_2d):
        W = np.ones((hmatrix_2d.dim, 2), dtype=np.float32)
        Y = hmatrix_2d.matmul(W)
        assert Y.dtype == np.float64

    def test_w_fortran_order_ok(self, hmatrix_2d):
        W = np.asfortranarray(
            np.random.default_rng(0).random((hmatrix_2d.dim, 3)))
        Y = hmatrix_2d.matmul(W)
        assert np.isfinite(Y).all()


class TestCorruptArtifacts:
    def test_load_nonexistent_file(self, tmp_path):
        with pytest.raises(PlanStoreError, match="does not exist"):
            load_hmatrix(tmp_path / "missing.npz")

    def test_load_wrong_file(self, tmp_path):
        path = tmp_path / "notanhmatrix.npz"
        np.savez(path, junk=np.zeros(3))
        with pytest.raises(PlanStoreError, match="corrupted"):
            load_hmatrix(path)

    def test_version_check(self, hmatrix_2d, tmp_path):
        from repro.core import io as hio

        path = hio.save_hmatrix(hmatrix_2d, tmp_path / "h.npz")
        old = hio._FORMAT_VERSION
        try:
            hio._FORMAT_VERSION = 999
            with pytest.raises(PlanStoreError, match="version"):
                hio.load_hmatrix(path)
        finally:
            hio._FORMAT_VERSION = old


class TestTreeInvariantEnforcement:
    def test_bad_perm_rejected(self, points_2d):
        tree = build_cluster_tree(points_2d, leaf_size=32)
        bad_perm = tree.perm.copy()
        bad_perm[0] = bad_perm[1]  # not a permutation
        with pytest.raises(ValueError, match="permutation"):
            ClusterTree(tree.points, bad_perm, tree.parent, tree.lchild,
                        tree.rchild, tree.level, tree.start, tree.stop)

    def test_root_range_checked(self, points_2d):
        tree = build_cluster_tree(points_2d, leaf_size=32)
        bad_stop = tree.stop.copy()
        bad_stop[0] = 5
        with pytest.raises(ValueError, match="root"):
            ClusterTree(tree.points, tree.perm, tree.parent, tree.lchild,
                        tree.rchild, tree.level, tree.start, bad_stop)

    def test_array_length_mismatch(self, points_2d):
        tree = build_cluster_tree(points_2d, leaf_size=32)
        with pytest.raises(ValueError, match="length"):
            ClusterTree(tree.points, tree.perm, tree.parent[:-1],
                        tree.lchild, tree.rchild, tree.level, tree.start,
                        tree.stop)
