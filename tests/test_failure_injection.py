"""Failure-injection tests: malformed inputs must fail fast and clearly.

A downstream adopter's first contact with the library is often a wrong
shape or a bad parameter; every public entry point should reject those with
an actionable ValueError instead of a deep NumPy broadcast error.

The chaos classes at the bottom go further (DESIGN.md section 10): a
:class:`~repro.observability.FaultPlan` names the exact interleaving
point where a worker process dies or a store artifact rots, and the
tests assert the *whole* failure contract — a typed error on the faulted
request, counters proving exactly one respawn/rebuild, and a bit-identical
result on the retry.
"""

import json

import numpy as np
import pytest

from repro import (
    Autotuner,
    ExecutionPolicy,
    Inspector,
    PlanConfig,
    PlanStore,
    PlanStoreError,
    Session,
    WorkerCrashError,
    inspector,
    load_hmatrix,
)
from repro.compression import interpolative_decomposition
from repro.core.evaluation import evaluate_reference
from repro.observability import FaultPlan, inject_faults
from repro.observability.faults import BARRIER_PHASES
from repro.sampling import build_sampling_plan
from repro.tree import build_cluster_tree
from repro.tree.cluster_tree import ClusterTree

#: Plan used by every chaos test (small + fixed p: fingerprints are
#: machine-independent, so compile/tamper/retry all address one artifact).
CHAOS_PLAN = PlanConfig(leaf_size=32, bacc=1e-6, p=4, seed=0)


class TestPointValidation:
    def test_empty_points(self):
        with pytest.raises(ValueError):
            inspector(np.zeros((0, 2)), kernel="gaussian")

    def test_nan_points(self):
        pts = np.random.default_rng(0).random((50, 2))
        pts[7, 1] = np.nan
        with pytest.raises(ValueError, match="finite"):
            inspector(pts, kernel="gaussian")

    def test_inf_points(self):
        pts = np.random.default_rng(0).random((50, 2))
        pts[3, 0] = np.inf
        with pytest.raises(ValueError, match="finite"):
            build_cluster_tree(pts)

    def test_3d_array_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            build_cluster_tree(np.zeros((4, 4, 4)))

    def test_1d_points_promoted(self):
        """1-D input is a valid d=1 point set, not an error."""
        tree = build_cluster_tree(np.linspace(0, 1, 40), leaf_size=8)
        assert tree.dim == 1


class TestParameterValidation:
    def test_bad_bacc(self, points_2d):
        # Validation moved up front: a bad plan fails at construction,
        # not deep inside the compression sweep.
        with pytest.raises(ValueError, match="bacc"):
            Inspector(bacc=-1e-5, leaf_size=32)

    def test_bad_structure(self, points_2d):
        with pytest.raises(ValueError, match="unknown structure"):
            inspector(points_2d, kernel="gaussian", structure="h5")

    def test_bad_kernel_name(self, points_2d):
        with pytest.raises(KeyError, match="unknown kernel"):
            inspector(points_2d, kernel="rbf-typo")

    def test_bad_sampling_k(self, points_2d):
        tree = build_cluster_tree(points_2d, leaf_size=32)
        # k is clamped to N-1 internally; only a degenerate tree fails.
        plan = build_sampling_plan(tree, k=10**9, seed=0)
        assert plan.k == len(points_2d) - 1

    def test_id_on_garbage(self):
        with pytest.raises(ValueError):
            interpolative_decomposition(np.array([1.0, 2.0]))  # 1-D


class TestEvaluationInputs:
    def test_wrong_w_rows(self, hmatrix_2d):
        with pytest.raises(ValueError, match="rows"):
            hmatrix_2d.matmul(np.zeros((hmatrix_2d.dim + 1, 2)))

    def test_reference_wrong_rows(self, hmatrix_2d):
        with pytest.raises(ValueError, match="rows"):
            evaluate_reference(hmatrix_2d.factors,
                               np.zeros((3, 2)))

    def test_w_dtype_coerced_not_crash(self, hmatrix_2d):
        W = np.ones((hmatrix_2d.dim, 2), dtype=np.float32)
        Y = hmatrix_2d.matmul(W)
        assert Y.dtype == np.float64

    def test_w_fortran_order_ok(self, hmatrix_2d):
        W = np.asfortranarray(
            np.random.default_rng(0).random((hmatrix_2d.dim, 3)))
        Y = hmatrix_2d.matmul(W)
        assert np.isfinite(Y).all()


class TestCorruptArtifacts:
    def test_load_nonexistent_file(self, tmp_path):
        with pytest.raises(PlanStoreError, match="does not exist"):
            load_hmatrix(tmp_path / "missing.npz")

    def test_load_wrong_file(self, tmp_path):
        path = tmp_path / "notanhmatrix.npz"
        np.savez(path, junk=np.zeros(3))
        with pytest.raises(PlanStoreError, match="corrupted"):
            load_hmatrix(path)

    def test_version_check(self, hmatrix_2d, tmp_path):
        from repro.core import io as hio

        path = hio.save_hmatrix(hmatrix_2d, tmp_path / "h.npz")
        old = hio._FORMAT_VERSION
        try:
            hio._FORMAT_VERSION = 999
            with pytest.raises(PlanStoreError, match="version"):
                hio.load_hmatrix(path)
        finally:
            hio._FORMAT_VERSION = old


class TestTreeInvariantEnforcement:
    def test_bad_perm_rejected(self, points_2d):
        tree = build_cluster_tree(points_2d, leaf_size=32)
        bad_perm = tree.perm.copy()
        bad_perm[0] = bad_perm[1]  # not a permutation
        with pytest.raises(ValueError, match="permutation"):
            ClusterTree(tree.points, bad_perm, tree.parent, tree.lchild,
                        tree.rchild, tree.level, tree.start, tree.stop)

    def test_root_range_checked(self, points_2d):
        tree = build_cluster_tree(points_2d, leaf_size=32)
        bad_stop = tree.stop.copy()
        bad_stop[0] = 5
        with pytest.raises(ValueError, match="root"):
            ClusterTree(tree.points, tree.perm, tree.parent, tree.lchild,
                        tree.rchild, tree.level, tree.start, bad_stop)

    def test_array_length_mismatch(self, points_2d):
        tree = build_cluster_tree(points_2d, leaf_size=32)
        with pytest.raises(ValueError, match="length"):
            ClusterTree(tree.points, tree.perm, tree.parent[:-1],
                        tree.lchild, tree.rchild, tree.level, tree.start,
                        tree.stop)


# --------------------------------------------------------------------------
# Chaos: deterministic fault schedules against the process pool and the
# plan store. Every test proves the full contract: typed error on the
# faulted request, counters showing exactly one respawn/rebuild, and a
# correct (bit-identical where the engine guarantees it) retry.
# --------------------------------------------------------------------------


def _flip_payload(directory, tier) -> int:
    """Flip one byte in every on-disk payload of ``tier``; returns count."""
    hit = 0
    for manifest_path in directory.glob("*.json"):
        if json.loads(manifest_path.read_text())["tier"] != tier:
            continue
        payload = manifest_path.with_suffix(".npz")
        data = bytearray(payload.read_bytes())
        data[len(data) // 2] ^= 0xFF
        payload.write_bytes(bytes(data))
        hit += 1
    assert hit, f"no {tier} artifact found to tamper with"
    return hit


class TestChaosWorkerCrash:
    """SIGKILL a pool worker at each barrier phase; the request must fail
    with the typed WorkerCrashError and the *next* request must respawn
    the pool (exactly one respawn counted) and match the serial result
    bit for bit."""

    @pytest.mark.parametrize("phase", BARRIER_PHASES)
    def test_kill_at_each_phase_then_respawn(self, phase, points_2d,
                                             gaussian_kernel):
        W = np.random.default_rng(7).random((len(points_2d), 4))
        policy = ExecutionPolicy(backend="process", num_workers=2)
        with Session(plan=CHAOS_PLAN, policy=policy) as session:
            H = session.inspect(points_2d, kernel=gaussian_kernel)
            ref = H.matmul(W, order="batched")  # serial ground truth
            np.testing.assert_array_equal(session.matmul(H, W), ref)

            with inject_faults(FaultPlan(kill_worker=(phase, 0))) as fp, \
                    pytest.raises(WorkerCrashError):
                session.matmul(H, W)
            assert fp.fired == [f"kill_worker:{phase}:0"]

            # Recovery: the dead engine is rebuilt once, then serves a
            # bit-identical product again.
            np.testing.assert_array_equal(session.matmul(H, W), ref)
            engines = session.cache_info()["engines"]
            assert engines["respawns"] == 1
            assert engines["built"] == 2
            assert engines["active"] == 1

    def test_worker_crash_error_is_runtime_error(self):
        # The typed error must stay catchable by pre-existing callers
        # that match RuntimeError.
        assert issubclass(WorkerCrashError, RuntimeError)

    def test_fault_plan_rejects_unknown_phase(self):
        with pytest.raises(ValueError, match="phase"):
            FaultPlan(kill_worker=("warmup", 0))

    def test_overlapping_plans_rejected(self):
        with inject_faults(FaultPlan()), \
                pytest.raises(RuntimeError, match="already installed"), \
                inject_faults(FaultPlan()):
            pass  # pragma: no cover


class TestChaosStoreCorruption:
    """Corruption under a *live* session: artifacts rot after warm() but
    before the next load. Every load fails closed (PlanStoreError), the
    rotten artifact is quarantined, and the retry rebuilds — counters
    prove exactly one miss + rebuild per corrupted tier."""

    def _compiled_store(self, tmp_path, points, kernel):
        d = tmp_path / "store"
        with Session(plan=CHAOS_PLAN, store=PlanStore(d)) as s:
            s.inspect(points, kernel=kernel)
        return d

    def test_hmatrix_rot_fails_closed_then_rebuilds(self, tmp_path,
                                                    points_2d,
                                                    gaussian_kernel):
        d = self._compiled_store(tmp_path, points_2d, gaussian_kernel)
        store = PlanStore(d)
        with Session(plan=CHAOS_PLAN, store=store) as session:
            assert session.warm() == 2  # p1 + hmatrix verified into memory
            _flip_payload(d, "hmatrix")
            store.clear_memory()  # the next get must go back to disk

            with pytest.raises(PlanStoreError):
                session.inspect(points_2d, kernel=gaussian_kernel)
            assert store.stats.quarantined == 1

            misses_before = store.stats.misses
            session.inspect(points_2d, kernel=gaussian_kernel)  # retry
            # Exactly one miss (the quarantined hmatrix) + one rebuild;
            # the intact p1 artifact still serves from disk.
            assert store.stats.misses == misses_before + 1
            assert session.stats.p2_builds == 1
            assert session.stats.p1_builds == 0
            assert session.stats.p1_hits == 1

            # Third request: clean hit on the rebuilt artifact.
            session.inspect(points_2d, kernel=gaussian_kernel)
            assert session.stats.hmatrix_hits >= 1
            assert store.stats.quarantined == 1  # still exactly one

    def test_cascading_rot_recovers_layer_by_layer(self, tmp_path,
                                                   points_2d,
                                                   gaussian_kernel):
        d = self._compiled_store(tmp_path, points_2d, gaussian_kernel)
        _flip_payload(d, "hmatrix")
        _flip_payload(d, "p1")
        store = PlanStore(d)
        with Session(plan=CHAOS_PLAN, store=store) as session:
            # First attempt dies on the hmatrix tier, second on p1: each
            # failure quarantines one layer, never more.
            with pytest.raises(PlanStoreError):
                session.inspect(points_2d, kernel=gaussian_kernel)
            assert store.stats.quarantined == 1
            with pytest.raises(PlanStoreError):
                session.inspect(points_2d, kernel=gaussian_kernel)
            assert store.stats.quarantined == 2
            # Both layers clean misses now: full rebuild, then verify the
            # rebuilt artifacts round-trip from disk.
            session.inspect(points_2d, kernel=gaussian_kernel)
            assert session.stats.p1_builds == 1
            assert session.stats.p2_builds == 1
            assert PlanStore(d).warm() == 2

    def test_verify_to_decode_rot_quarantines(self, tmp_path, points_2d,
                                              gaussian_kernel):
        """The TOCTOU window an on-disk tamper cannot reach: bytes rot
        *between* SHA-256 verification and decode. The store cannot tell
        this from real rot, so it must fail closed and quarantine."""
        d = self._compiled_store(tmp_path, points_2d, gaussian_kernel)
        store = PlanStore(d)
        with Session(plan=CHAOS_PLAN, store=store) as session:
            with inject_faults(FaultPlan(corrupt_tier="hmatrix")) as fp, \
                    pytest.raises(PlanStoreError):
                session.inspect(points_2d, kernel=gaussian_kernel)
            assert fp.fired == ["corrupt:hmatrix"]
            assert store.stats.quarantined == 1
            # Plan exhausted: the retry reads healthy bytes and rebuilds.
            session.inspect(points_2d, kernel=gaussian_kernel)
            assert session.stats.p2_builds == 1

    def test_profile_rot_fails_closed_then_retunes(self, tmp_path,
                                                   points_2d,
                                                   gaussian_kernel):
        H = Inspector(leaf_size=32, bacc=1e-6, p=4, seed=0).run(
            points_2d, gaussian_kernel)
        d = tmp_path / "store"
        auto = ExecutionPolicy(order="auto")
        first = Autotuner(store=PlanStore(d), reps=1, trial_cols=4)
        first.resolve(H, 4, auto)
        assert first.stats.tunes == 1

        _flip_payload(d, "profile")
        store = PlanStore(d)
        fresh = Autotuner(store=store, reps=1, trial_cols=4)
        # Fail closed: a rotten profile is NOT performance metadata to
        # shrug off — it is an integrity failure like any other artifact.
        with pytest.raises(PlanStoreError):
            fresh.resolve(H, 4, auto)
        assert store.stats.quarantined == 1
        # Retry re-tunes from scratch (no store hit) and repersists.
        fresh.resolve(H, 4, auto)
        assert fresh.stats.tunes == 1
        assert fresh.stats.store_hits == 0

    def test_compiled_rot_degrades_and_rebuilds_exactly_once(
            self, tmp_path, points_2d, gaussian_kernel):
        """The compiled tier's contract differs from the profile tier's:
        serving must never raise. On-disk rot is quarantined by the
        store, surfaces as a typed ``store_corrupt`` fallback, and the
        artifact is rebuilt (and re-persisted) exactly once — with
        byte-identical results throughout."""
        pol = ExecutionPolicy(order="compiled")
        d = tmp_path / "store"
        W = np.random.default_rng(11).random((len(points_2d), 2))
        with Session(plan=CHAOS_PLAN, store=PlanStore(d), policy=pol) as s:
            Y0 = s.matmul(s.inspect(points_2d, kernel=gaussian_kernel), W)
            assert s.cache_info()["compiled"]["builds"] == 1

        _flip_payload(d, "compiled")
        store = PlanStore(d)
        with Session(plan=CHAOS_PLAN, store=store, policy=pol) as s:
            H = s.inspect(points_2d, kernel=gaussian_kernel)
            Y1 = s.matmul(H, W)  # no exception: degrade + rebuild
            s.matmul(H, W)       # second request: memory hit, no rebuild
            info = s.cache_info()["compiled"]
        assert info["fallbacks"] == {"store_corrupt": 1}
        assert info["builds"] == 1 and info["store_puts"] == 1
        assert store.stats.quarantined == 1
        assert Y1.tobytes() == Y0.tobytes()

        # The re-persisted artifact serves the next process cleanly.
        with Session(plan=CHAOS_PLAN, store=PlanStore(d), policy=pol) as s:
            s.matmul(s.inspect(points_2d, kernel=gaussian_kernel), W)
            info = s.cache_info()["compiled"]
        assert info["builds"] == 0 and info["store_hits"] == 1

    def test_compiled_verify_to_decode_rot_degrades(self, tmp_path,
                                                    points_2d,
                                                    gaussian_kernel):
        """Live TOCTOU rot on the compiled tier (bytes rot between
        SHA-256 verify and decode): quarantined by the store, absorbed
        by the cache as one typed fallback + rebuild — the request
        still succeeds."""
        pol = ExecutionPolicy(order="compiled")
        d = tmp_path / "store"
        W = np.random.default_rng(12).random((len(points_2d), 2))
        with Session(plan=CHAOS_PLAN, store=PlanStore(d), policy=pol) as s:
            Y0 = s.matmul(s.inspect(points_2d, kernel=gaussian_kernel), W)

        store = PlanStore(d)
        with Session(plan=CHAOS_PLAN, store=store, policy=pol) as s:
            H = s.inspect(points_2d, kernel=gaussian_kernel)
            with inject_faults(FaultPlan(corrupt_tier="compiled")) as fp:
                Y1 = s.matmul(H, W)
            assert fp.fired == ["corrupt:compiled"]
            info = s.cache_info()["compiled"]
        assert info["fallbacks"] == {"store_corrupt": 1}
        assert info["builds"] == 1
        assert store.stats.quarantined == 1
        assert Y1.tobytes() == Y0.tobytes()
