"""Unit tests for structure analysis: blocking, coarsening, bin-packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    build_blockset,
    build_coarsenset,
    first_fit_binpack,
    node_cost,
)
from repro.analysis.binpack import bin_loads
from repro.analysis.coarsening import node_heights
from repro.compression import compress
from repro.tree import build_cluster_tree


@pytest.fixture(scope="module")
def compressed_2d(points_2d, gaussian_kernel):
    return compress(points_2d, gaussian_kernel, structure="h2-geometric",
                    tau=0.65, bacc=1e-5, leaf_size=32, seed=0)


class TestBinpack:
    def test_balanced_loads(self):
        costs = [5.0, 3.0, 3.0, 2.0, 2.0, 1.0]
        bins = first_fit_binpack(costs, 2)
        loads = bin_loads(costs, bins)
        assert abs(loads[0] - loads[1]) <= 2.0

    def test_all_items_assigned_once(self):
        costs = list(np.random.default_rng(0).random(37))
        bins = first_fit_binpack(costs, 5)
        flat = sorted(i for b in bins for i in b)
        assert flat == list(range(37))

    def test_fewer_items_than_bins(self):
        bins = first_fit_binpack([1.0, 2.0], 8)
        assert len(bins) == 2  # empty bins dropped

    def test_single_bin(self):
        bins = first_fit_binpack([1.0, 2.0, 3.0], 1)
        assert len(bins) == 1 and sorted(bins[0]) == [0, 1, 2]

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            first_fit_binpack([1.0], 0)

    @given(
        costs=st.lists(st.floats(0.1, 100), min_size=1, max_size=60),
        n_bins=st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_lpt_bound(self, costs, n_bins):
        """LPT makespan is within 4/3 + eps of the trivial lower bound max."""
        bins = first_fit_binpack(costs, n_bins)
        loads = bin_loads(costs, bins)
        lower = max(max(costs), sum(costs) / n_bins)
        assert max(loads) <= (4.0 / 3.0) * lower + max(costs)


class TestBlocking:
    def test_near_blockset_covers_all_interactions(self, compressed_2d):
        ht = compressed_2d.htree
        bs = build_blockset(ht, blocksize=2, kind="near")
        assert sorted(bs.all_interactions()) == sorted(ht.near_pairs())

    def test_far_blockset_covers_all_interactions(self, compressed_2d):
        ht = compressed_2d.htree
        bs = build_blockset(ht, blocksize=4, kind="far")
        assert sorted(bs.all_interactions()) == sorted(ht.far_pairs())

    def test_blocks_have_disjoint_writers(self, compressed_2d):
        """The key guarantee: no two blocks write the same output node, so
        the loop over blocks is synchronization-free."""
        ht = compressed_2d.htree
        bs = build_blockset(ht, blocksize=2, kind="near")
        for a in range(bs.num_blocks):
            for b in range(a + 1, bs.num_blocks):
                assert bs.writer_rows(a).isdisjoint(bs.writer_rows(b))

    def test_far_blocks_disjoint_writers(self, compressed_2d):
        ht = compressed_2d.htree
        bs = build_blockset(ht, blocksize=4, kind="far")
        for a in range(bs.num_blocks):
            for b in range(a + 1, bs.num_blocks):
                assert bs.writer_rows(a).isdisjoint(bs.writer_rows(b))

    def test_blocksize_one_groups_by_output_node(self, compressed_2d):
        ht = compressed_2d.htree
        bs = build_blockset(ht, blocksize=1, kind="near")
        for block in bs.blocks:
            writers = {i for (i, _) in block}
            # blocksize 1 -> each grid row holds exactly one writer node
            assert len(writers) == 1

    def test_larger_blocksize_fewer_blocks(self, compressed_2d):
        ht = compressed_2d.htree
        small = build_blockset(ht, blocksize=1, kind="near").num_blocks
        large = build_blockset(ht, blocksize=8, kind="near").num_blocks
        assert large <= small

    def test_same_writer_same_block(self, compressed_2d):
        ht = compressed_2d.htree
        bs = build_blockset(ht, blocksize=2, kind="near")
        home = {}
        for bidx, block in enumerate(bs.blocks):
            for (i, _j) in block:
                assert home.setdefault(i, bidx) == bidx

    def test_invalid_blocksize(self, compressed_2d):
        with pytest.raises(ValueError):
            build_blockset(compressed_2d.htree, blocksize=0)

    def test_empty_interactions(self, compressed_2d):
        bs = build_blockset(compressed_2d.htree, blocksize=2,
                            kind="near", interactions=[])
        assert bs.num_blocks == 0


class TestCoarsening:
    def test_heights(self, points_2d):
        tree = build_cluster_tree(points_2d, leaf_size=32)
        h = node_heights(tree)
        assert (h[tree.leaves] == 0).all()
        assert h[0] == max(h)

    def test_all_active_nodes_covered_once(self, compressed_2d):
        tree, sranks = compressed_2d.tree, compressed_2d.sranks
        cs = build_coarsenset(tree, sranks, p=4, agg=2)
        nodes = cs.all_nodes()
        active = set(np.flatnonzero(sranks > 0).tolist())
        assert sorted(nodes) == sorted(active)
        assert len(nodes) == len(set(nodes))

    def test_children_before_parents_globally(self, compressed_2d):
        """Upward execution order (level by level, subtree by subtree) must
        respect tree dependencies."""
        tree, sranks = compressed_2d.tree, compressed_2d.sranks
        cs = build_coarsenset(tree, sranks, p=4, agg=2)
        seen = set()
        for cl in cs.levels:
            # All subtrees in a level conceptually run in parallel: children
            # computed in earlier levels or earlier in the same subtree.
            for st_ in cl.subtrees:
                local_seen = set(seen)
                for v in st_.nodes:
                    if not tree.is_leaf(v):
                        for c in (int(tree.lchild[v]), int(tree.rchild[v])):
                            if sranks[c] > 0:
                                assert c in local_seen, (
                                    f"node {v} before child {c}"
                                )
                    local_seen.add(v)
            seen.update(cl.all_nodes())

    def test_subtrees_within_level_disjoint(self, compressed_2d):
        tree, sranks = compressed_2d.tree, compressed_2d.sranks
        cs = build_coarsenset(tree, sranks, p=4, agg=2)
        for cl in cs.levels:
            all_nodes = cl.all_nodes()
            assert len(all_nodes) == len(set(all_nodes))

    def test_partition_count_bounded_by_p(self, compressed_2d):
        tree, sranks = compressed_2d.tree, compressed_2d.sranks
        for p in (1, 2, 4, 8):
            cs = build_coarsenset(tree, sranks, p=p, agg=2)
            for cl in cs.levels:
                assert len(cl.subtrees) <= max(
                    p, 1
                ), f"p={p}: {len(cl.subtrees)} subtrees"

    def test_load_balance_quality(self, compressed_2d):
        """Max subtree cost per level should be within 2x of the mean (LPT)."""
        tree, sranks = compressed_2d.tree, compressed_2d.sranks
        cs = build_coarsenset(tree, sranks, p=4, agg=2)
        for cl in cs.levels:
            costs = [st_.cost for st_ in cl.subtrees]
            if len(costs) >= 2 and sum(costs) > 0:
                assert max(costs) <= 2.5 * (sum(costs) / len(costs)) + max(costs) / 2

    def test_agg_one_matches_tree_levels(self, compressed_2d):
        tree, sranks = compressed_2d.tree, compressed_2d.sranks
        cs = build_coarsenset(tree, sranks, p=4, agg=1)
        h = node_heights(tree)
        for cl in cs.levels:
            for v in cl.all_nodes():
                assert cl.lb <= h[v] < cl.ub
                assert cl.ub - cl.lb == 1

    def test_large_agg_single_level(self, compressed_2d):
        tree, sranks = compressed_2d.tree, compressed_2d.sranks
        cs = build_coarsenset(tree, sranks, p=4, agg=tree.height + 1)
        assert cs.num_levels == 1

    def test_cost_model_values(self, compressed_2d):
        tree, sranks = compressed_2d.tree, compressed_2d.sranks
        leaf = int(tree.leaves[0])
        if sranks[leaf] > 0:
            assert node_cost(tree, sranks, leaf) == tree.node_size(leaf) * sranks[leaf]
        interior = int(tree.parent[leaf])
        if sranks[interior] > 0:
            lc, rc = int(tree.lchild[interior]), int(tree.rchild[interior])
            assert node_cost(tree, sranks, interior) == (
                (sranks[lc] + sranks[rc]) * sranks[interior]
            )

    def test_inactive_nodes_excluded(self, compressed_2d):
        tree, sranks = compressed_2d.tree, compressed_2d.sranks
        cs = build_coarsenset(tree, sranks, p=4, agg=2)
        assert 0 not in cs.all_nodes()  # root srank 0

    def test_all_sranks_zero(self, points_2d):
        tree = build_cluster_tree(points_2d, leaf_size=32)
        cs = build_coarsenset(tree, np.zeros(tree.num_nodes), p=4)
        assert cs.num_levels == 0

    def test_invalid_params(self, compressed_2d):
        tree, sranks = compressed_2d.tree, compressed_2d.sranks
        with pytest.raises(ValueError):
            build_coarsenset(tree, sranks, p=0)
        with pytest.raises(ValueError):
            build_coarsenset(tree, sranks, p=2, agg=0)
