"""Shared fixtures: small point sets and pre-built compression pipelines."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.inspector import Inspector
from repro.kernels.gaussian import GaussianKernel


@pytest.fixture(autouse=True)
def _sync_trace_recording(request):
    """Record a sync trace per test when ``MATROX_SYNC_TRACE_DIR`` is set.

    Mirrors ``MATROX_TRACE_DIR`` for engine traces: the CI analyze job
    sets the variable while running the service/store/net suites, then
    replays every dumped trace through ``repro analyze --sync-traces``.
    Locks built by the ``make_lock``/``make_rlock``/``make_condition``
    factories *during* the test are traced; ``# guarded-by:`` attributes
    of the thread-tier classes record every access. Traces touching
    fewer than two threads are discarded at dump time.
    """
    if not os.environ.get("MATROX_SYNC_TRACE_DIR"):
        yield
        return
    from repro.observability.sync import (
        SyncTracer,
        default_instrumented_classes,
        install_sync_tracer,
        instrument_guarded,
        maybe_dump_sync_trace,
        uninstall_sync_tracer,
    )

    tracer = SyncTracer(request.node.name)
    undos = [instrument_guarded(cls)
             for cls in default_instrumented_classes()]
    install_sync_tracer(tracer)
    try:
        yield
    finally:
        uninstall_sync_tracer()
        for undo in undos:
            undo()
        maybe_dump_sync_trace(tracer)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def points_2d():
    """600 uniform points in the unit square (kd-tree path)."""
    return np.random.default_rng(7).random((600, 2))


@pytest.fixture(scope="session")
def points_hd():
    """400 clustered 12-dimensional points (two-means path)."""
    g = np.random.default_rng(8)
    centers = g.normal(scale=2.0, size=(5, 12))
    labels = g.integers(0, 5, size=400)
    return centers[labels] + 0.3 * g.normal(size=(400, 12))


@pytest.fixture(scope="session")
def gaussian_kernel():
    return GaussianKernel(bandwidth=0.5)


@pytest.fixture(scope="session")
def inspector_small():
    """Inspector configured for test-scale problems."""
    return Inspector(structure="h2-geometric", tau=0.65, leaf_size=32,
                     bacc=1e-6, p=4, seed=0)


@pytest.fixture(scope="session")
def hmatrix_2d(points_2d, gaussian_kernel, inspector_small):
    """A fully-inspected HMatrix on the 2-D point set (shared, read-only)."""
    return inspector_small.run(points_2d, gaussian_kernel)


@pytest.fixture(scope="session")
def p1_2d(points_2d, inspector_small):
    return inspector_small.run_p1(points_2d)
