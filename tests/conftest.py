"""Shared fixtures: small point sets and pre-built compression pipelines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.inspector import Inspector
from repro.kernels.gaussian import GaussianKernel


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def points_2d():
    """600 uniform points in the unit square (kd-tree path)."""
    return np.random.default_rng(7).random((600, 2))


@pytest.fixture(scope="session")
def points_hd():
    """400 clustered 12-dimensional points (two-means path)."""
    g = np.random.default_rng(8)
    centers = g.normal(scale=2.0, size=(5, 12))
    labels = g.integers(0, 5, size=400)
    return centers[labels] + 0.3 * g.normal(size=(400, 12))


@pytest.fixture(scope="session")
def gaussian_kernel():
    return GaussianKernel(bandwidth=0.5)


@pytest.fixture(scope="session")
def inspector_small():
    """Inspector configured for test-scale problems."""
    return Inspector(structure="h2-geometric", tau=0.65, leaf_size=32,
                     bacc=1e-6, p=4, seed=0)


@pytest.fixture(scope="session")
def hmatrix_2d(points_2d, gaussian_kernel, inspector_small):
    """A fully-inspected HMatrix on the 2-D point set (shared, read-only)."""
    return inspector_small.run(points_2d, gaussian_kernel)


@pytest.fixture(scope="session")
def p1_2d(points_2d, inspector_small):
    return inspector_small.run_p1(points_2d)
