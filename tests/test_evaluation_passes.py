"""Fine-grained unit tests for the four evaluation passes (Fig. 1d semantics).

These validate each pass against independent linear-algebra identities, so a
regression in one loop is localised instead of only failing the end-to-end
accuracy test.
"""

import numpy as np
import pytest

from repro.compression import compress
from repro.core.evaluation import (
    coupling_pass,
    downward_pass,
    near_pass,
    upward_pass,
)
from repro.kernels import GaussianKernel


@pytest.fixture(scope="module")
def setup(points_2d):
    kernel = GaussianKernel(0.5)
    res = compress(points_2d, kernel, structure="h2-geometric", tau=0.65,
                   bacc=1e-7, leaf_size=32, seed=0)
    rng = np.random.default_rng(0)
    W = rng.random((len(points_2d), 3))
    return res, kernel, W


def expand_basis(factors, v):
    """Explicit |I_v| x r_v basis via the nested transfer chain."""
    tree = factors.tree
    if tree.is_leaf(v):
        return factors.leaf_basis[v]
    lc, rc = int(tree.lchild[v]), int(tree.rchild[v])
    E = factors.transfer[v]
    rl = factors.srank(lc)
    return np.vstack([
        expand_basis(factors, lc) @ E[:rl],
        expand_basis(factors, rc) @ E[rl:],
    ])


class TestUpwardPass:
    def test_leaf_weights_explicit(self, setup):
        res, _k, W = setup
        T = upward_pass(res.factors, W)
        tree = res.tree
        for v in tree.leaves[:8]:
            v = int(v)
            if res.factors.srank(v) == 0:
                continue
            V = res.factors.leaf_basis[v]
            np.testing.assert_allclose(
                T[v], V.T @ W[tree.start[v]:tree.stop[v]], atol=1e-12)

    def test_interior_weights_equal_expanded_basis(self, setup):
        """T_v == (expanded U_v)^T W_v — the nested-basis identity."""
        res, _k, W = setup
        T = upward_pass(res.factors, W)
        tree = res.tree
        interior = [v for v in range(tree.num_nodes)
                    if not tree.is_leaf(v) and res.factors.srank(v) > 0]
        for v in interior[:6]:
            U = expand_basis(res.factors, v)
            np.testing.assert_allclose(
                T[v], U.T @ W[tree.start[v]:tree.stop[v]], atol=1e-10)

    def test_shapes(self, setup):
        res, _k, W = setup
        T = upward_pass(res.factors, W)
        for v, t in T.items():
            assert t.shape == (res.factors.srank(v), W.shape[1])


class TestCouplingPass:
    def test_accumulates_all_far_partners(self, setup):
        res, _k, W = setup
        T = upward_pass(res.factors, W)
        S = coupling_pass(res.factors, T, W.shape[1])
        for i in list(S)[:6]:
            expect = sum(
                res.factors.coupling[(i, j)] @ T[j]
                for j in res.factors.htree.far.get(i, [])
            )
            np.testing.assert_allclose(S[i], expect, atol=1e-12)

    def test_only_far_targets_have_s(self, setup):
        res, _k, W = setup
        T = upward_pass(res.factors, W)
        S = coupling_pass(res.factors, T, W.shape[1])
        assert set(S) == {i for (i, _j) in res.factors.coupling}


class TestDownwardPass:
    def test_far_field_contribution_matches_dense(self, setup):
        """near_pass off: Y must equal the assembled far-field sum."""
        res, _k, W = setup
        tree = res.tree
        T = upward_pass(res.factors, W)
        S = coupling_pass(res.factors, T, W.shape[1])
        Y = np.zeros_like(W)
        downward_pass(res.factors, S, Y)

        expect = np.zeros_like(W)
        for (i, j), B in res.factors.coupling.items():
            Ui = expand_basis(res.factors, i)
            Uj = expand_basis(res.factors, j)
            expect[tree.start[i]:tree.stop[i]] += (
                Ui @ B @ (Uj.T @ W[tree.start[j]:tree.stop[j]]))
        np.testing.assert_allclose(Y, expect, atol=1e-9)


class TestNearPass:
    def test_matches_dense_near_field(self, setup):
        res, kernel, W = setup
        tree = res.tree
        Y = np.zeros_like(W)
        near_pass(res.factors, W, Y)
        expect = np.zeros_like(W)
        for (i, j) in res.factors.htree.near_pairs():
            Kij = kernel.block(tree.node_points(i), tree.node_points(j))
            expect[tree.start[i]:tree.stop[i]] += (
                Kij @ W[tree.start[j]:tree.stop[j]])
        np.testing.assert_allclose(Y, expect, atol=1e-10)

    def test_near_pass_is_exact_not_approximated(self, setup):
        res, kernel, _W = setup
        tree = res.tree
        (i, j) = next(iter(res.factors.near_blocks))
        np.testing.assert_array_equal(
            res.factors.near_blocks[(i, j)],
            kernel.block(tree.node_points(i), tree.node_points(j)))


class TestLinearity:
    def test_evaluation_is_linear(self, setup):
        from repro.core.evaluation import evaluate_reference

        res, _k, W = setup
        rng = np.random.default_rng(1)
        W2 = rng.random(W.shape)
        a, b = 2.5, -1.25
        lhs = evaluate_reference(res.factors, a * W + b * W2)
        rhs = (a * evaluate_reference(res.factors, W)
               + b * evaluate_reference(res.factors, W2))
        np.testing.assert_allclose(lhs, rhs, atol=1e-9)

    def test_symmetric_kernel_gives_symmetric_operator(self, setup):
        """<e_i, K~ e_j> == <e_j, K~ e_i> for the symmetric Gaussian."""
        from repro.core.evaluation import evaluate_reference

        res, _k, _W = setup
        n = res.tree.num_points
        rng = np.random.default_rng(2)
        x = rng.random((n, 1))
        y = rng.random((n, 1))
        lhs = float((y.T @ evaluate_reference(res.factors, x))[0, 0])
        rhs = float((x.T @ evaluate_reference(res.factors, y))[0, 0])
        assert lhs == pytest.approx(rhs, rel=1e-6)
