"""Tests for flop accounting and the inspector cost model."""

import pytest

from repro.compression import compress
from repro.metrics import (
    evaluation_flop_breakdown,
    inspector_cost_model,
    simulate_inspector_seconds,
)
from repro.runtime import HASWELL


@pytest.fixture(scope="module")
def result(points_2d, gaussian_kernel):
    return compress(points_2d, gaussian_kernel, structure="h2-geometric",
                    tau=0.65, bacc=1e-5, leaf_size=32, seed=0)


class TestFlopBreakdown:
    def test_total_matches_factors_method(self, result):
        q = 7
        bd = evaluation_flop_breakdown(result.factors, q)
        assert bd["total"] == pytest.approx(
            result.factors.evaluation_flops(q))

    def test_components_sum_to_total(self, result):
        bd = evaluation_flop_breakdown(result.factors, 5)
        assert bd["total"] == pytest.approx(
            bd["near"] + bd["upward"] + bd["coupling"] + bd["downward"])

    def test_scales_linearly_with_q(self, result):
        b1 = evaluation_flop_breakdown(result.factors, 1)
        b8 = evaluation_flop_breakdown(result.factors, 8)
        assert b8["total"] == pytest.approx(8 * b1["total"])

    def test_upward_equals_downward(self, result):
        bd = evaluation_flop_breakdown(result.factors, 3)
        assert bd["upward"] == bd["downward"]

    def test_flops_match_actual_matmul_cost(self, result):
        """Dimensional sanity: every GEMM in the reference evaluation is
        counted (verified by computing the count independently)."""
        q = 2
        t = result.tree
        f = result.factors
        near = sum(2 * t.node_size(i) * t.node_size(j) * q
                   for (i, j) in f.near_blocks)
        bd = evaluation_flop_breakdown(f, q)
        assert bd["near"] == near


class TestInspectorCostModel:
    def test_all_components_positive(self, result):
        c = inspector_cost_model(result)
        assert c.sampling_flops > 0
        assert c.lowrank_flops > 0
        assert c.kernel_flops > 0
        assert c.tree_flops > 0
        assert c.compression_flops == pytest.approx(
            c.sampling_flops + c.lowrank_flops + c.kernel_flops
            + c.tree_flops)

    def test_exact_knn_quadratic_in_n(self, points_2d, gaussian_kernel):
        small = compress(points_2d[:200], gaussian_kernel, leaf_size=32,
                         seed=0)
        big = compress(points_2d, gaussian_kernel, leaf_size=32, seed=0)
        cs, cb = inspector_cost_model(small), inspector_cost_model(big)
        ratio = cb.sampling_flops / cs.sampling_flops
        assert ratio > (600 / 200) ** 1.5  # superlinear (quadratic kNN)

    def test_simulated_seconds_structure(self, result):
        c = inspector_cost_model(result)
        s = simulate_inspector_seconds(c, HASWELL, p=12)
        assert set(s) == {"compression", "structure_analysis",
                          "code_generation"}
        assert s["compression"] > 0
        # Paper: SA + codegen are 8.1% of inspection.
        frac = (s["structure_analysis"] + s["code_generation"]) / (
            s["compression"] + s["structure_analysis"]
            + s["code_generation"])
        assert frac == pytest.approx(0.081 / 1.081, rel=0.02)

    def test_overhead_multiplier(self, result):
        c = inspector_cost_model(result)
        base = simulate_inspector_seconds(c, HASWELL, p=12)
        slow = simulate_inspector_seconds(c, HASWELL, p=12, overhead=2.5)
        assert slow["compression"] == pytest.approx(
            2.5 * base["compression"])

    def test_more_cores_faster(self, result):
        c = inspector_cost_model(result)
        s1 = simulate_inspector_seconds(c, HASWELL, p=1)
        s12 = simulate_inspector_seconds(c, HASWELL, p=12)
        assert s12["compression"] < s1["compression"]
