"""Thread-tier concurrency certifier (DESIGN.md §14).

The acceptance bar: the shipped tree's lock-acquisition graph is
acyclic and matches the checked-in golden graph; a doctored two-lock
inversion fires C001 exactly once (and the waiver convention applies);
a real KernelService workload records a sync trace the vector-clock
checker certifies clean while a seeded unordered pair is flagged; the
schedule explorer drives inequivalent interleavings through the stock
scenarios without a failure; and the whole pipeline is reachable as
``repro analyze --threads --deadlocks --sync-traces ... --strict``.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import (
    LOCK_RULES,
    ScheduleExplorer,
    analysis_counters,
    analyze_lock_order,
    certify_sync_trace,
    certify_sync_trace_dir,
    explore_default_scenarios,
    reset_analysis_counters,
    schedule_footprint,
    seed_unordered_pair,
)
from repro.cli import main as cli_main
from repro.observability.sync import (
    SYNC_TRACE_VERSION,
    SyncTracer,
    TracedLock,
    active_sync_tracer,
    default_instrumented_classes,
    guarded_attrs_of,
    install_sync_tracer,
    instrument_guarded,
    load_sync_trace,
    make_condition,
    make_lock,
    make_rlock,
    save_sync_trace,
    sync_tracing,
    uninstall_sync_tracer,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
GOLDEN = Path(__file__).resolve().parent / "fixtures" / "analysis" \
    / "lock_order.json"


@pytest.fixture(autouse=True)
def _fresh_sync_state():
    # These tests install their own tracers; never run under the
    # recording fixture's process-global one (see conftest).
    uninstall_sync_tracer()
    reset_analysis_counters()
    yield
    uninstall_sync_tracer()
    reset_analysis_counters()


# --------------------------------------------------------------------------
# Static lock-order analysis.
# --------------------------------------------------------------------------

CYCLIC = """\
import threading


class Pair:
    def __init__(self):
        self.a = threading.Lock()
        self.b = threading.Lock()

    def forward(self):
        with self.a:
            with self.b:
                pass

    def backward(self):
        with self.b:
            with self.a:
                pass
"""


class TestLockOrder:
    def test_shipped_tree_certifies_acyclic(self):
        report = analyze_lock_order([SRC], base=REPO_ROOT)
        assert report.cycles == []
        assert report.findings == []
        # The graph is real: the serving stack's locks and the
        # interprocedural nesting edges are present.
        for lock in ("KernelService._cv", "KernelService._session_lock",
                     "PlanStore._lock", "Autotuner._lock",
                     "Autotuner._key_locks[*]", "KernelServer._lock",
                     "AuditLog._lock", "CompiledCache._lock"):
            assert lock in report.locks, lock
        assert report.locks["PlanStore._lock"] == "rlock"
        assert report.locks["KernelService._cv"] == "condition"
        assert report.locks["Autotuner._key_locks[*]"] == "family"
        assert len(report.edges) > 0
        # Autotune nests its per-key lock over the store round-trip.
        assert ("Autotuner._key_locks[*]", "PlanStore._lock") \
            in report.edges
        assert analysis_counters()["lockorder_certified"] == 1
        assert analysis_counters()["lockorder_cycles"] == 0

    def test_golden_graph_matches(self):
        report = analyze_lock_order([SRC], base=REPO_ROOT)
        golden = json.loads(GOLDEN.read_text())
        assert report.summary() == golden, (
            "lock-acquisition graph drifted from the golden file; if the "
            "new ordering is intended, regenerate with `repro analyze "
            "--threads --lock-graph tests/fixtures/analysis/"
            "lock_order.json`")

    def test_inverted_pair_fires_c001_once(self, tmp_path):
        mod = tmp_path / "pair.py"
        mod.write_text(CYCLIC)
        report = analyze_lock_order([mod], base=tmp_path)
        assert [sorted(c) for c in report.cycles] == \
            [["Pair.a", "Pair.b"]]
        (finding,) = report.findings
        assert finding.rule == "C001"
        assert "C001" in LOCK_RULES
        assert not finding.waived
        assert "Pair.a" in finding.message and "Pair.b" in finding.message
        assert "deadlock" in finding.message
        assert analysis_counters()["lockorder_cycles"] == 1
        assert analysis_counters()["lockorder_certified"] == 0

    def test_cycle_waiver_applies(self, tmp_path):
        waived = CYCLIC.replace(
            "        with self.a:\n            with self.b:",
            "        with self.a:\n            with self.b:"
            "  # analysis: waive C001 -- demo inversion")
        assert waived != CYCLIC
        mod = tmp_path / "pair.py"
        mod.write_text(waived)
        report = analyze_lock_order([mod], base=tmp_path)
        (finding,) = report.findings
        assert finding.waived
        assert finding.waiver_reason == "demo inversion"
        assert report.to_doc()["unwaived_cycles"] == 0

    def test_rlock_reentry_is_not_a_cycle(self, tmp_path):
        mod = tmp_path / "reent.py"
        mod.write_text(
            "import threading\n\n\n"
            "class Cache:\n"
            "    def __init__(self):\n"
            "        self.lock = threading.RLock()\n\n"
            "    def outer(self):\n"
            "        with self.lock:\n"
            "            self.inner()\n\n"
            "    def inner(self):\n"
            "        with self.lock:\n"
            "            pass\n")
        report = analyze_lock_order([mod], base=tmp_path)
        assert report.cycles == []
        assert ("Cache.lock", "Cache.lock") not in report.edges

    def test_summary_has_no_line_numbers(self):
        report = analyze_lock_order([SRC], base=REPO_ROOT)
        summary = report.summary()
        assert summary["lockorder_version"] == 1
        assert summary["locks"] == sorted(summary["locks"])
        assert all(isinstance(e, list) and len(e) == 2
                   for e in summary["edges"])


# --------------------------------------------------------------------------
# Traced primitives: zero-cost off, transparent on.
# --------------------------------------------------------------------------

class TestTracedPrimitives:
    def test_factories_are_plain_threading_without_tracer(self):
        assert active_sync_tracer() is None
        assert isinstance(make_lock("x"), type(threading.Lock()))
        assert isinstance(make_rlock("x"), type(threading.RLock()))
        assert isinstance(make_condition("x"), threading.Condition)

    def test_factories_trace_under_tracer(self):
        with sync_tracing("prims") as tracer:
            lock = make_lock("demo.lock")
            assert isinstance(lock, TracedLock)
            with lock:
                pass
            cv = make_condition("demo.cv")
            with cv:
                cv.notify_all()
        doc = tracer.to_doc()
        ops = [(ev["op"], ev.get("name")) for ev in doc["events"]]
        assert ("acquire", "demo.lock") in ops
        assert ("release", "demo.lock") in ops
        assert ("notify", "demo.cv") in ops

    def test_rlock_reentrancy_records_outermost_only(self):
        with sync_tracing("reent") as tracer:
            rlock = make_rlock("demo.rlock")
            with rlock:
                with rlock:
                    pass
        events = [ev for ev in tracer.to_doc()["events"]
                  if ev.get("name") == "demo.rlock"]
        assert [ev["op"] for ev in events] == ["acquire", "release"]

    def test_orphaned_traced_lock_degrades_to_plain(self):
        with sync_tracing("orphan"):
            lock = make_lock("demo.orphan")
        # The tracer is gone; the primitive must still synchronise.
        with lock:
            assert lock.locked()
        assert not lock.locked()

    def test_nested_install_is_refused(self):
        with sync_tracing("outer"):
            with pytest.raises(RuntimeError, match="already installed"):
                install_sync_tracer(SyncTracer("inner"))

    def test_guarded_attrs_registry(self):
        from repro.net.server import AuditLog, KernelServer

        assert guarded_attrs_of(AuditLog) == {
            "lines": "self._lock", "write_failures": "self._lock"}
        attrs = guarded_attrs_of(KernelServer)
        assert attrs.get("_draining") == "self._lock"
        assert attrs.get("_serving") == "self._lock"
        assert len(default_instrumented_classes()) >= 5

    def test_instrument_guarded_records_and_undoes(self):
        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self.n = 0  # guarded-by: self._lock

        undo = instrument_guarded(Box)
        try:
            with sync_tracing("box") as tracer:
                box = Box()
                with box._lock:
                    box.n += 1
            events = [ev for ev in tracer.to_doc()["events"]
                      if ev["op"] in ("read", "write")]
            assert {ev["name"] for ev in events} == {"Box.n"}
            assert {ev["guard"] for ev in events} == {"self._lock"}
            assert {ev["op"] for ev in events} == {"read", "write"}
        finally:
            undo()
        assert not isinstance(Box.__dict__.get("n"), property)


# --------------------------------------------------------------------------
# Happens-before checker on synthetic traces: the rules, one by one.
# --------------------------------------------------------------------------

def _trace(events, threads):
    return {"sync_trace_version": SYNC_TRACE_VERSION, "name": "synthetic",
            "threads": {str(k): v for k, v in threads.items()},
            "events": events}


def _ev(seq, op, thread, **kw):
    return {"seq": seq, "op": op, "thread": thread, **kw}


class TestHappensBefore:
    def test_unordered_writes_are_flagged(self):
        trace = _trace([
            _ev(1, "write", 1, obj=7, name="C.x", guard="C._lock"),
            _ev(2, "write", 2, obj=7, name="C.x", guard="C._lock"),
        ], {1: "alpha", 2: "beta"})
        (violation,) = certify_sync_trace(trace)
        assert violation.attr == "C.x"
        assert violation.guard == "C._lock"
        assert {violation.thread_a, violation.thread_b} == {"alpha", "beta"}
        assert "unordered" in violation.format()
        assert analysis_counters()["sync_flagged"] == 1

    def test_lock_ordered_writes_certify(self):
        trace = _trace([
            _ev(1, "acquire", 1, obj=9, name="C._lock"),
            _ev(2, "write", 1, obj=7, name="C.x", guard="C._lock"),
            _ev(3, "release", 1, obj=9, name="C._lock"),
            _ev(4, "acquire", 2, obj=9, name="C._lock"),
            _ev(5, "write", 2, obj=7, name="C.x", guard="C._lock"),
            _ev(6, "release", 2, obj=9, name="C._lock"),
        ], {1: "alpha", 2: "beta"})
        assert certify_sync_trace(trace) == []
        assert analysis_counters()["sync_certified"] == 1

    def test_fork_join_orders_child_against_parent(self):
        trace = _trace([
            _ev(1, "write", 1, obj=7, name="C.x", guard="C._lock"),
            _ev(2, "fork", 1, token=1),
            _ev(3, "child", 2, token=1),
            _ev(4, "write", 2, obj=7, name="C.x", guard="C._lock"),
            _ev(5, "child_end", 2, token=1),
            _ev(6, "join", 1, token=1),
            _ev(7, "write", 1, obj=7, name="C.x", guard="C._lock"),
        ], {1: "parent", 2: "child"})
        assert certify_sync_trace(trace) == []

    def test_future_orders_producer_before_consumer(self):
        trace = _trace([
            _ev(1, "write", 1, obj=7, name="C.x", guard="C._lock"),
            _ev(2, "fut_set", 1, obj=5),
            _ev(3, "fut_get", 2, obj=5),
            _ev(4, "read", 2, obj=7, name="C.x", guard="C._lock"),
        ], {1: "producer", 2: "consumer"})
        assert certify_sync_trace(trace) == []

    def test_concurrent_reads_do_not_conflict(self):
        trace = _trace([
            _ev(1, "read", 1, obj=7, name="C.x", guard="C._lock"),
            _ev(2, "read", 2, obj=7, name="C.x", guard="C._lock"),
        ], {1: "alpha", 2: "beta"})
        assert certify_sync_trace(trace) == []

    def test_unordered_read_write_pair_is_flagged(self):
        trace = _trace([
            _ev(1, "read", 1, obj=7, name="C.x", guard="C._lock"),
            _ev(2, "write", 2, obj=7, name="C.x", guard="C._lock"),
        ], {1: "alpha", 2: "beta"})
        (violation,) = certify_sync_trace(trace)
        assert "write" in (violation.mode_a, violation.mode_b)

    def test_version_gate(self):
        with pytest.raises(ValueError, match="not a v1 sync trace"):
            certify_sync_trace({"sync_trace_version": 99, "events": []})
        with pytest.raises(ValueError, match="not a v1 sync trace"):
            certify_sync_trace([])

    def test_seeding_needs_a_guarded_write(self):
        trace = _trace([
            _ev(1, "read", 1, obj=7, name="C.x", guard="C._lock"),
            _ev(2, "read", 2, obj=7, name="C.x", guard="C._lock"),
        ], {1: "alpha", 2: "beta"})
        with pytest.raises(ValueError, match="no guarded attribute"):
            seed_unordered_pair(trace)


# --------------------------------------------------------------------------
# End to end: a real KernelService workload records, replays, certifies.
# --------------------------------------------------------------------------

@pytest.fixture(scope="module")
def service_trace():
    """A sync trace from a real traced service round-trip (recorded the
    way the conftest recording fixture does it)."""
    from repro.api.plan import PlanConfig
    from repro.api.service import KernelService

    uninstall_sync_tracer()
    undos = [instrument_guarded(cls)
             for cls in default_instrumented_classes()]
    tracer = SyncTracer("service-workload")
    install_sync_tracer(tracer)
    try:
        points = np.random.default_rng(3).random((64, 2))
        with KernelService(plan=PlanConfig(leaf_size=32, bacc=1e-6, p=4,
                                           seed=0),
                           max_batch=4, max_wait_ms=1.0) as svc:
            svc.register("pts", points, warm=True)
            W = np.random.default_rng(4).random((64, 2))
            Y = svc.request("pts", W, timeout=60)
            assert Y.shape == (64, 2) and np.all(np.isfinite(Y))
            assert svc.drain(timeout=60)
    finally:
        uninstall_sync_tracer()
        for undo in undos:
            undo()
    return tracer.to_doc()


class TestServiceTrace:
    def test_trace_is_concurrent_and_guarded(self, service_trace):
        assert service_trace["sync_trace_version"] == SYNC_TRACE_VERSION
        assert len(service_trace["threads"]) >= 2
        ops = {ev["op"] for ev in service_trace["events"]}
        # The dispatcher protocol leaves all three event families.
        assert {"acquire", "release", "fork"} <= ops
        assert {"read", "write"} & ops
        guarded = {ev["name"] for ev in service_trace["events"]
                   if ev["op"] in ("read", "write")}
        assert any(name.startswith("KernelService.") for name in guarded)

    def test_real_trace_certifies_clean(self, service_trace):
        assert certify_sync_trace(service_trace) == []
        assert analysis_counters()["sync_certified"] == 1

    def test_seeded_violation_is_flagged(self, service_trace):
        doctored = seed_unordered_pair(service_trace)
        violations = certify_sync_trace(doctored)
        assert violations
        assert any("ghost" in (v.thread_a, v.thread_b)
                   for v in violations)
        assert analysis_counters()["sync_flagged"] == 1
        # The original document was not mutated.
        assert certify_sync_trace(service_trace) == []

    def test_trace_roundtrip_and_dir_certification(self, service_trace,
                                                   tmp_path):
        path = save_sync_trace(service_trace,
                               tmp_path / "svc.synctrace.json")
        assert load_sync_trace(path) == service_trace
        results = certify_sync_trace_dir(tmp_path)
        assert results == {"svc.synctrace.json": []}
        with pytest.raises(FileNotFoundError, match="no sync traces"):
            certify_sync_trace_dir(tmp_path / "empty")


# --------------------------------------------------------------------------
# Schedule explorer: determinism, dedup, failure detection.
# --------------------------------------------------------------------------

def _two_workers_scenario():
    """Two threads racing over two traced locks (schedule diversity)."""
    a = make_lock("demo.a")
    b = make_lock("demo.b")

    def worker():
        with a:
            with b:
                pass

    threads = [threading.Thread(target=worker, name=f"w{i}")
               for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)


class TestScheduleExplorer:
    def test_footprint_canonicalises_threads(self):
        doc_a = {"events": [
            _ev(1, "acquire", 111, name="L"),
            _ev(2, "acquire", 222, name="M"),
            _ev(3, "release", 222, name="M"),
        ]}
        doc_b = {"events": [
            _ev(1, "acquire", 5, name="L"),
            _ev(2, "acquire", 9, name="M"),
        ]}
        assert schedule_footprint(doc_a) == (("L", "T0"), ("M", "T1"))
        assert schedule_footprint(doc_a) == schedule_footprint(doc_b)

    def test_explorer_dedupes_and_counts(self):
        report = ScheduleExplorer(_two_workers_scenario,
                                  name="two-workers", runs=6).explore()
        assert report.runs == 6
        assert report.ok
        assert 1 <= report.inequivalent <= 6
        assert len(report.footprints) == report.inequivalent
        assert analysis_counters()["schedules_explored"] \
            == report.inequivalent
        assert analysis_counters()["schedule_failures"] == 0
        doc = report.to_doc()
        assert doc["scenario"] == "two-workers"
        assert doc["failures"] == []

    def test_failing_scenario_is_reported(self):
        def bad():
            raise AssertionError("invariant violated")

        report = ScheduleExplorer(bad, runs=2).explore()
        assert not report.ok
        assert len(report.failures) == 2
        assert "invariant violated" in report.failures[0][1]
        assert analysis_counters()["schedule_failures"] == 2

    def test_hung_scenario_times_out_as_failure(self):
        def hang():
            time.sleep(5)

        report = ScheduleExplorer(hang, runs=1, timeout=0.2).explore()
        (failure,) = report.failures
        assert "did not finish" in failure[1]

    def test_tracer_is_uninstalled_after_exploration(self):
        ScheduleExplorer(_two_workers_scenario, runs=1).explore()
        assert active_sync_tracer() is None

    def test_runs_must_be_positive(self):
        with pytest.raises(ValueError, match="runs must be"):
            ScheduleExplorer(_two_workers_scenario, runs=0)

    def test_stock_scenarios_explore_clean(self):
        reports = explore_default_scenarios(runs=2)
        assert set(reports) == {"dispatcher_drain", "dispatcher_crash",
                                "store_eviction"}
        for name, report in reports.items():
            assert report.ok, f"{name}: {report.failures}"
            assert report.runs == 2
            assert report.inequivalent >= 1


# --------------------------------------------------------------------------
# CLI wiring: repro analyze --threads / --sync-traces / --deadlocks.
# --------------------------------------------------------------------------

class TestAnalyzeCLI:
    def test_threads_strict_exits_zero(self, capsys):
        assert cli_main(["analyze", "--threads", "--strict",
                         str(SRC)]) == 0
        out = capsys.readouterr().out
        assert "lock graph:" in out
        assert "0 cycle(s) (0 unwaived)" in out

    def test_lock_graph_export_matches_golden(self, tmp_path, capsys):
        out_json = tmp_path / "lock_order.json"
        assert cli_main(["analyze", "--threads", "--lock-graph",
                         str(out_json), str(SRC)]) == 0
        assert json.loads(out_json.read_text()) \
            == json.loads(GOLDEN.read_text())

    def test_inverted_pair_fails_strict(self, tmp_path, capsys):
        mod = tmp_path / "pair.py"
        mod.write_text(CYCLIC)
        assert cli_main(["analyze", "--threads", "--strict",
                         str(mod)]) == 1
        captured = capsys.readouterr()
        assert "C001" in captured.out
        assert "strict mode: 1 failure(s)" in captured.err

    def test_sync_trace_replay(self, service_trace, tmp_path, capsys):
        save_sync_trace(service_trace, tmp_path / "svc.synctrace.json")
        assert cli_main(["analyze", "--strict", "--sync-traces",
                         str(tmp_path), str(SRC)]) == 0
        assert "1 sync trace(s) certified, 0 happens-before " \
            "violation(s)" in capsys.readouterr().out

        save_sync_trace(seed_unordered_pair(service_trace),
                        tmp_path / "bad.synctrace.json")
        assert cli_main(["analyze", "--strict", "--sync-traces",
                         str(tmp_path), str(SRC)]) == 1
        assert "UNORDERED" in capsys.readouterr().out

    def test_sync_trace_empty_dir_exits_two(self, tmp_path, capsys):
        assert cli_main(["analyze", "--sync-traces", str(tmp_path),
                         str(SRC)]) == 2
        assert "no sync traces" in capsys.readouterr().err

    def test_deadlocks_explores_schedules(self, tmp_path, capsys):
        out_json = tmp_path / "analysis.json"
        assert cli_main(["analyze", "--strict", "--deadlocks",
                         "--schedules", "1", "--json", str(out_json),
                         str(SRC)]) == 0
        out = capsys.readouterr().out
        assert "inequivalent schedule(s) explored across 3 scenario(s), " \
            "0 failure(s)" in out
        doc = json.loads(out_json.read_text())
        sched = doc["schedules"]
        assert sched["failures"] == 0
        assert sched["inequivalent"] >= 3
        assert set(sched["scenarios"]) == {
            "dispatcher_drain", "dispatcher_crash", "store_eviction"}

    def test_counters_surface_in_collect_stats(self):
        from repro.observability import collect_stats

        analyze_lock_order([SRC], base=REPO_ROOT)
        counters = collect_stats()["analysis"]
        assert counters["lockorder_certified"] == 1
        for key in ("lockorder_cycles", "sync_certified", "sync_flagged",
                    "schedules_explored", "schedule_failures"):
            assert key in counters
