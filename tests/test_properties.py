"""System-level property-based tests (hypothesis).

Each property runs the real pipeline on randomized configurations and checks
an invariant that must hold for *every* valid input — the invariants the
paper's correctness rests on.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import build_blockset, build_coarsenset
from repro.compression import compress
from repro.core.evaluation import evaluate_reference
from repro.htree import build_htree
from repro.kernels import GaussianKernel
from repro.tree import build_cluster_tree

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def rand_points(seed: int, n: int, d: int) -> np.ndarray:
    return np.random.default_rng(seed).random((n, d))


class TestHTreeProperties:
    @given(seed=st.integers(0, 50), n=st.integers(40, 250),
           leaf=st.sampled_from([8, 16, 32]),
           tau=st.floats(0.3, 3.0))
    @SLOW
    def test_geometric_tiling_always_exact(self, seed, n, leaf, tau):
        """Near+far interactions tile the N x N matrix exactly once, for any
        point set, leaf size, and admissibility parameter."""
        pts = rand_points(seed, n, 2)
        tree = build_cluster_tree(pts, leaf_size=leaf)
        ht = build_htree(tree, "h2-geometric", tau=tau)
        cov = ht.coverage_matrix()
        assert (cov == 1).all()

    @given(seed=st.integers(0, 50), n=st.integers(40, 200),
           budget=st.floats(0.0, 0.5))
    @SLOW
    def test_budget_tiling_always_exact(self, seed, n, budget):
        pts = rand_points(seed, n, 3)
        tree = build_cluster_tree(pts, leaf_size=16)
        ht = build_htree(tree, "h2-b", budget=budget)
        cov = ht.coverage_matrix()
        assert (cov == 1).all()


class TestBlockingProperties:
    @given(seed=st.integers(0, 50), blocksize=st.integers(1, 8))
    @SLOW
    def test_blocks_always_conflict_free(self, seed, blocksize):
        pts = rand_points(seed, 150, 2)
        tree = build_cluster_tree(pts, leaf_size=16)
        ht = build_htree(tree, "h2-geometric", tau=0.65)
        bs = build_blockset(ht, blocksize, kind="near")
        # Partition of the interaction set...
        assert sorted(bs.all_interactions()) == sorted(ht.near_pairs())
        # ...with pairwise-disjoint writer sets.
        writers = [bs.writer_rows(b) for b in range(bs.num_blocks)]
        for a in range(len(writers)):
            for b in range(a + 1, len(writers)):
                assert writers[a].isdisjoint(writers[b])


class TestCoarseningProperties:
    @given(seed=st.integers(0, 50), p=st.integers(1, 8),
           agg=st.integers(1, 5))
    @SLOW
    def test_schedule_respects_dependencies(self, seed, p, agg):
        """For any (p, agg): nodes appear exactly once, children always
        scheduled before parents in the upward order."""
        pts = rand_points(seed, 200, 2)
        kernel = GaussianKernel(0.5)
        res = compress(pts, kernel, structure="h2-geometric", tau=0.65,
                       bacc=1e-4, leaf_size=16, seed=0)
        cs = build_coarsenset(res.tree, res.sranks, p=p, agg=agg)
        order = []
        for cl in cs.levels:
            # Sub-trees in a level may interleave arbitrarily: validate each
            # sub-tree locally against everything scheduled in prior levels.
            done_before = set(order)
            for st_ in cl.subtrees:
                local = set(done_before)
                for v in st_.nodes:
                    if not res.tree.is_leaf(v):
                        for c in (int(res.tree.lchild[v]),
                                  int(res.tree.rchild[v])):
                            if res.sranks[c] > 0:
                                assert c in local
                    local.add(v)
            order.extend(cl.all_nodes())
        active = set(np.flatnonzero(res.sranks > 0).tolist())
        assert sorted(order) == sorted(active)


class TestEvaluationProperties:
    @given(seed=st.integers(0, 30),
           structure=st.sampled_from(["hss", "h2-geometric"]),
           q=st.integers(1, 4))
    @SLOW
    def test_accuracy_always_within_tolerance(self, seed, structure, q):
        """End to end, for random point sets: ε_f stays under a loose bound
        tied to bacc (the paper's loose-upper-bound relationship)."""
        pts = rand_points(seed, 220, 2)
        kernel = GaussianKernel(0.5)
        res = compress(pts, kernel, structure=structure, bacc=1e-7,
                       leaf_size=16, seed=0)
        rng = np.random.default_rng(seed + 1)
        W = rng.random((220, q))
        Y = evaluate_reference(res.factors, W)
        K = kernel.block(res.tree.ordered_points, res.tree.ordered_points)
        err = np.linalg.norm(Y - K @ W) / np.linalg.norm(K @ W)
        assert err < 1e-3

    @given(seed=st.integers(0, 30))
    @SLOW
    def test_generated_code_always_matches_reference(self, seed):
        """Codegen correctness is input-independent."""
        from repro.core.inspector import Inspector

        pts = rand_points(seed, 180, 2)
        insp = Inspector(structure="h2-geometric", tau=0.65, bacc=1e-5,
                         leaf_size=16, p=3, seed=0)
        H = insp.run(pts, GaussianKernel(0.5))
        rng = np.random.default_rng(seed)
        W = rng.random((180, 2))
        Wt = W[H.tree.perm]
        np.testing.assert_allclose(
            H.evaluator(Wt), evaluate_reference(H.factors, Wt), atol=1e-9)
