"""Unit tests for task-graph and phase extraction."""

import pytest

from repro import inspector
from repro.kernels import GaussianKernel
from repro.metrics import evaluation_flop_breakdown
from repro.runtime.tasks import (
    gofmm_taskgraph,
    levelbylevel_phases,
    matrox_phases,
)


@pytest.fixture(scope="module")
def H(points_2d):
    return inspector(points_2d, kernel=GaussianKernel(0.5),
                     structure="h2-geometric", tau=0.65,
                     leaf_size=32, bacc=1e-5, seed=0, p=4)


@pytest.fixture(scope="module")
def H_hss(points_2d):
    return inspector(points_2d, kernel=GaussianKernel(0.5), structure="hss",
                     leaf_size=32, bacc=1e-5, seed=0, p=4)


Q = 64


class TestMatroxPhases:
    def test_flops_match_analytic_count(self, H):
        phases = matrox_phases(H.cds, Q, decision=H.evaluator.decision)
        total = sum(p.total_flops() for p in phases)
        expect = evaluation_flop_breakdown(H.factors, Q)["total"]
        assert total == pytest.approx(expect)

    def test_phase_ordering(self, H):
        phases = matrox_phases(H.cds, Q, decision=H.evaluator.decision)
        names = [p.name for p in phases]
        assert names[0] == "near"
        first_up = next(i for i, n in enumerate(names) if n.startswith("upward"))
        last_up = max(i for i, n in enumerate(names) if n.startswith("upward"))
        assert names.index("coupling") > last_up >= first_up
        assert any(n.startswith("downward") for n in names)

    def test_peeled_phase_present_when_decided(self, H):
        phases = matrox_phases(H.cds, Q, decision=H.evaluator.decision)
        if H.evaluator.decision.peel_root:
            assert any(p.kind == "blas" for p in phases)

    def test_hss_near_not_atomic(self, H_hss):
        """HSS near list is the leaf diagonal: single-writer, no atomics."""
        phases = matrox_phases(H_hss.cds, Q, decision=H_hss.evaluator.decision)
        near = next(p for p in phases if p.name == "near")
        assert not any(t.atomic for u in near.units for t in u)

    def test_h2_unblocked_near_is_atomic(self, H):
        """Forcing block lowering off marks multi-writer near tasks atomic."""
        from repro.baselines.matrox import _decision_for

        d = _decision_for("+coarsen", H.evaluator.decision)
        phases = matrox_phases(H.cds, Q, decision=d)
        near = next(p for p in phases if p.name == "near")
        assert any(t.atomic for u in near.units for t in u)

    def test_coarsen_units_bounded_by_p(self, H):
        phases = matrox_phases(H.cds, Q, decision=H.evaluator.decision)
        for p in phases:
            if p.name.startswith("upward[") and p.kind == "parallel_units":
                assert len(p.units) <= max(H.cds.coarsenset.num_partitions, 1)


class TestGofmmTaskgraph:
    def test_covers_all_work(self, H):
        tasks = gofmm_taskgraph(H.factors, Q)
        total = sum(t.flops for t in tasks)
        expect = evaluation_flop_breakdown(H.factors, Q)["total"]
        assert total == pytest.approx(expect)

    def test_acyclic_and_valid_deps(self, H):
        tasks = gofmm_taskgraph(H.factors, Q)
        for i, t in enumerate(tasks):
            for d in t.deps:
                assert 0 <= d < len(tasks)
                assert d != i

    def test_topological_order_possible(self, H):
        """Kahn's algorithm must consume the whole graph (acyclicity)."""
        tasks = gofmm_taskgraph(H.factors, Q)
        indeg = [len(t.deps) for t in tasks]
        deps_of = [[] for _ in tasks]
        for i, t in enumerate(tasks):
            for d in t.deps:
                deps_of[d].append(i)
        ready = [i for i, d in enumerate(indeg) if d == 0]
        seen = 0
        while ready:
            v = ready.pop()
            seen += 1
            for w in deps_of[v]:
                indeg[w] -= 1
                if indeg[w] == 0:
                    ready.append(w)
        assert seen == len(tasks)

    def test_interior_up_depends_on_children(self, H):
        tasks = gofmm_taskgraph(H.factors, Q)
        up_names = {t.name: i for i, t in enumerate(tasks)
                    if t.name.startswith("up(")}
        tree = H.tree
        for v in range(tree.num_nodes):
            if tree.is_leaf(v) or H.factors.srank(v) == 0:
                continue
            i = up_names.get(f"up({v})")
            if i is None:
                continue
            dep_names = {tasks[d].name for d in tasks[i].deps}
            for c in (int(tree.lchild[v]), int(tree.rchild[v])):
                if H.factors.srank(c) > 0:
                    assert f"up({c})" in dep_names


class TestLevelByLevelPhases:
    def test_flops_match(self, H_hss):
        phases = levelbylevel_phases(H_hss.factors, Q)
        total = sum(p.total_flops() for p in phases)
        expect = evaluation_flop_breakdown(H_hss.factors, Q)["total"]
        assert total == pytest.approx(expect)

    def test_one_phase_per_active_level_each_direction(self, H_hss):
        phases = levelbylevel_phases(H_hss.factors, Q)
        ups = [p for p in phases if p.name.startswith("up-level")]
        downs = [p for p in phases if p.name.startswith("down-level")]
        assert len(ups) == len(downs)
        assert len(ups) >= 2  # multiple tree levels -> multiple barriers

    def test_more_barriers_than_matrox(self, H_hss):
        """The level-by-level discipline synchronizes once per tree level;
        coarsening (agg=2) roughly halves the barrier count."""
        lvl = levelbylevel_phases(H_hss.factors, Q)
        mtx = matrox_phases(H_hss.cds, Q, decision=H_hss.evaluator.decision)
        n_lvl = sum(1 for p in lvl if p.kind != "serial")
        n_mtx = sum(1 for p in mtx if p.kind != "serial")
        assert n_lvl > n_mtx
