"""PlanStore: tiered get path, durability, integrity, eviction, warm-start.

The acceptance bar for compile-once/serve-forever: a *fresh* Session over
an existing store directory must serve its first matmul with zero
``p1_builds``/``p2_builds`` (counters asserted), and a tampered artifact
must fail closed with :class:`PlanStoreError`.
"""

import json
import threading

import numpy as np
import pytest

from repro import PlanConfig, PlanStore, PlanStoreError, Session
from repro.api.store import registered_tiers

PLAN = PlanConfig(leaf_size=32, bacc=1e-6, p=4, seed=0)


def _tamper(directory, tier="hmatrix", mode="flip"):
    """Corrupt every payload of ``tier`` in a store directory."""
    hit = 0
    for manifest_path in directory.glob("*.json"):
        if json.loads(manifest_path.read_text())["tier"] != tier:
            continue
        payload = manifest_path.with_suffix(".npz")
        if mode == "flip":
            data = bytearray(payload.read_bytes())
            data[len(data) // 2] ^= 0xFF
            payload.write_bytes(bytes(data))
        elif mode == "truncate":
            payload.write_bytes(payload.read_bytes()[:64])
        elif mode == "unlink":
            payload.unlink()
        hit += 1
    assert hit, f"no {tier} artifact found to tamper with"


@pytest.fixture()
def store_dir(tmp_path, points_2d, gaussian_kernel):
    """A store directory compiled by one (now closed) session."""
    d = tmp_path / "store"
    with Session(plan=PLAN, store=PlanStore(d)) as session:
        session.inspect(points_2d, kernel=gaussian_kernel)
    return d


class TestMemoryTier:
    def test_get_put_roundtrip_identity(self, hmatrix_2d):
        store = PlanStore()
        key = ("pfp", "planfp", ("gaussian",))
        assert store.get_hmatrix(key) is None
        store.put_hmatrix(key, hmatrix_2d)
        assert store.get_hmatrix(key) is hmatrix_2d
        assert store.stats.memory_hits == 1 and store.stats.misses == 1

    def test_lru_capacity_respected(self, hmatrix_2d):
        store = PlanStore(memory_hmatrix=2)
        for i in range(3):
            store.put_hmatrix(("k", i), hmatrix_2d)
        assert store.get_hmatrix(("k", 0)) is None  # evicted, oldest
        assert store.get_hmatrix(("k", 2)) is hmatrix_2d

    def test_memory_only_flush_requires_directory(self, hmatrix_2d,
                                                  tmp_path):
        store = PlanStore()
        store.put_hmatrix(("k",), hmatrix_2d)
        with pytest.raises(PlanStoreError, match="memory-only"):
            store.flush()
        assert store.flush(tmp_path / "snap") == 1
        assert PlanStore(tmp_path / "snap").get_hmatrix(("k",)) is not None

    def test_distinct_keys_distinct_digests(self):
        d1 = PlanStore.digest("hmatrix", ("a", "b"))
        d2 = PlanStore.digest("hmatrix", ("a", "c"))
        d3 = PlanStore.digest("p1", ("a", "b"))
        assert len({d1, d2, d3}) == 3

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="tier"):
            PlanStore.digest("p3", ("a",))


class TestDiskTier:
    def test_hmatrix_roundtrip_same_product(self, hmatrix_2d, tmp_path):
        store = PlanStore(tmp_path)
        key = ("pfp", "planfp", ("gaussian",))
        store.put_hmatrix(key, hmatrix_2d)
        fresh = PlanStore(tmp_path)  # no memory tier content
        H2 = fresh.get_hmatrix(key)
        assert fresh.stats.disk_hits == 1
        W = np.random.default_rng(0).random((hmatrix_2d.dim, 4))
        np.testing.assert_array_equal(hmatrix_2d.matmul(W), H2.matmul(W))

    def test_p1_roundtrip(self, p1_2d, inspector_small, gaussian_kernel,
                          tmp_path):
        store = PlanStore(tmp_path)
        store.put_p1(("pfp", "p1fp"), p1_2d)
        p1b = PlanStore(tmp_path).get_p1(("pfp", "p1fp"))
        H_a = inspector_small.run_p2(p1_2d, gaussian_kernel)
        H_b = inspector_small.run_p2(p1b, gaussian_kernel)
        W = np.random.default_rng(1).random((H_a.dim, 3))
        np.testing.assert_allclose(H_a.matmul(W), H_b.matmul(W), atol=1e-10)

    def test_second_get_served_from_memory(self, hmatrix_2d, tmp_path):
        store = PlanStore(tmp_path)
        store.put_hmatrix(("k",), hmatrix_2d)
        fresh = PlanStore(tmp_path)
        fresh.get_hmatrix(("k",))
        fresh.get_hmatrix(("k",))
        assert fresh.stats.disk_hits == 1
        assert fresh.stats.memory_hits == 1

    def test_manifest_records_key_and_sha(self, hmatrix_2d, tmp_path):
        store = PlanStore(tmp_path)
        key = ("pfp", "planfp", ("gaussian", (("bandwidth", 0.5),)))
        store.put_hmatrix(key, hmatrix_2d)
        (entry,) = store.entries()
        assert entry["tier"] == "hmatrix"
        assert entry["key"] == repr(key)
        assert len(entry["sha256"]) == 64
        assert entry["size"] > 0

    def test_no_tmp_litter_after_put(self, hmatrix_2d, tmp_path):
        store = PlanStore(tmp_path)
        store.put_hmatrix(("k",), hmatrix_2d)
        assert not list(tmp_path.glob("*.tmp.*"))

    def test_warm_preloads_memory(self, store_dir):
        store = PlanStore(store_dir)
        assert store.warm() == 2  # one p1 + one hmatrix artifact
        info = store.cache_info()
        assert info["p1_entries"] == 1 and info["hmatrix_entries"] == 1


class TestIntegrity:
    @pytest.mark.parametrize("mode", ["flip", "truncate", "unlink"])
    def test_tampered_hmatrix_fails_closed(self, store_dir, points_2d,
                                           gaussian_kernel, mode):
        _tamper(store_dir, "hmatrix", mode)
        store = PlanStore(store_dir)
        with Session(plan=PLAN, store=store) as session, \
                pytest.raises(PlanStoreError):
            session.inspect(points_2d, kernel=gaussian_kernel)
        assert store.stats.integrity_failures >= 1

    def test_tampered_p1_fails_closed(self, store_dir, points_2d,
                                      gaussian_kernel):
        # Remove the hmatrix artifact so inspection reaches the p1 tier.
        _tamper(store_dir, "hmatrix", "unlink")
        for m in store_dir.glob("*.json"):
            if json.loads(m.read_text())["tier"] == "hmatrix":
                m.unlink()
        _tamper(store_dir, "p1", "flip")
        with Session(plan=PLAN, store=PlanStore(store_dir)) as session, \
                pytest.raises(PlanStoreError):
            session.inspect(points_2d, kernel=gaussian_kernel)

    def test_corrupt_manifest_fails_closed(self, store_dir):
        for m in store_dir.glob("*.json"):
            m.write_text("{not json")
        with pytest.raises(PlanStoreError, match="not JSON"):
            PlanStore(store_dir).warm()

    def test_wrong_store_version_fails_closed(self, store_dir):
        for m in store_dir.glob("*.json"):
            doc = json.loads(m.read_text())
            doc["store_version"] = 999
            m.write_text(json.dumps(doc))
        with pytest.raises(PlanStoreError, match="version"):
            PlanStore(store_dir).warm()

    def test_warm_verifies_every_artifact(self, store_dir):
        _tamper(store_dir, "p1", "flip")
        with pytest.raises(PlanStoreError):
            PlanStore(store_dir).warm()


class TestEviction:
    def test_max_bytes_evicts_lru(self, hmatrix_2d, p1_2d, tmp_path):
        store = PlanStore(tmp_path, max_bytes=1)  # everything but newest
        store.put_p1(("p1",), p1_2d)
        store.put_hmatrix(("h",), hmatrix_2d)
        assert store.stats.evictions >= 1
        assert len(store.entries()) == 1
        # Evicted entries are clean misses (no torn state), not errors.
        fresh = PlanStore(tmp_path)
        assert fresh.get_p1(("p1",)) is None
        assert fresh.get_hmatrix(("h",)) is not None

    def test_newest_entry_never_evicted(self, hmatrix_2d, tmp_path):
        store = PlanStore(tmp_path, max_bytes=1)
        store.put_hmatrix(("only",), hmatrix_2d)
        assert len(store.entries()) == 1

    def test_unbounded_by_default(self, hmatrix_2d, tmp_path):
        store = PlanStore(tmp_path)
        for i in range(3):
            store.put_hmatrix(("k", i), hmatrix_2d)
        assert store.stats.evictions == 0
        assert len(store.entries()) == 3


class TestSessionWarmStart:
    def test_fresh_process_serves_with_zero_builds(self, store_dir,
                                                   points_2d,
                                                   gaussian_kernel):
        """THE acceptance test: cold-start after restart skips inspection."""
        with Session(plan=PLAN, store=PlanStore(store_dir)) as session:
            H = session.inspect(points_2d, kernel=gaussian_kernel)
            W = np.random.default_rng(2).random((len(points_2d), 4))
            Y = session.matmul(H, W)
        assert session.stats.p1_builds == 0
        assert session.stats.p2_builds == 0
        assert session.stats.hmatrix_hits == 1
        assert session.store.stats.disk_hits == 1
        assert np.isfinite(Y).all()

    def test_warm_start_product_matches_cold_build(self, store_dir,
                                                   points_2d,
                                                   gaussian_kernel,
                                                   inspector_small):
        H_cold = inspector_small.run(points_2d, gaussian_kernel)
        with Session(plan=PLAN, store=PlanStore(store_dir)) as session:
            H_warm = session.inspect(points_2d, kernel=gaussian_kernel)
        W = np.random.default_rng(3).random((len(points_2d), 3))
        np.testing.assert_array_equal(H_cold.matmul(W), H_warm.matmul(W))

    def test_p2_reuse_from_disk_p1(self, store_dir, points_2d,
                                   gaussian_kernel):
        """A new bacc hits the p1 disk tier: p2 rebuilds, p1 does not."""
        with Session(plan=PLAN, store=PlanStore(store_dir)) as session:
            session.inspect(points_2d, kernel=gaussian_kernel, bacc=1e-3)
        assert session.stats.p1_builds == 0
        assert session.stats.p1_hits == 1
        assert session.stats.p2_builds == 1

    def test_session_accepts_path_and_store(self, tmp_path, points_2d,
                                            gaussian_kernel):
        with Session(plan=PLAN, store=tmp_path / "s") as a:
            a.inspect(points_2d, kernel=gaussian_kernel)
        with Session(plan=PLAN, store=PlanStore(tmp_path / "s")) as b:
            b.inspect(points_2d, kernel=gaussian_kernel)
        assert b.stats.p1_builds == 0 and b.stats.p2_builds == 0
        with pytest.raises(TypeError, match="store"):
            Session(store=42)

    def test_session_save_snapshots_memory_store(self, tmp_path, points_2d,
                                                 gaussian_kernel):
        with Session(plan=PLAN) as session:  # memory-only default
            session.inspect(points_2d, kernel=gaussian_kernel)
            assert session.save(tmp_path / "snap") == 2
        with Session(plan=PLAN, store=tmp_path / "snap") as warm:
            warm.inspect(points_2d, kernel=gaussian_kernel)
        assert warm.stats.p1_builds == 0 and warm.stats.p2_builds == 0

    def test_session_warm_preloads(self, store_dir, points_2d,
                                   gaussian_kernel):
        with Session(plan=PLAN, store=PlanStore(store_dir)) as session:
            assert session.warm() == 2
            session.inspect(points_2d, kernel=gaussian_kernel)
        assert session.store.stats.memory_hits == 1
        assert session.store.stats.disk_hits == 0  # preloaded by warm()


class TestThreadSafety:
    def test_concurrent_get_put(self, hmatrix_2d, tmp_path):
        store = PlanStore(tmp_path)
        errors = []

        def worker(i):
            try:
                for j in range(5):
                    store.put_hmatrix(("k", i, j), hmatrix_2d)
                    assert store.get_hmatrix(("k", i, j)) is not None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(store.entries()) == 20


def test_tier_registry_covers_all_formats():
    # The compiled tier self-registers via the autoload hook, so the
    # registry enumerates all four without an explicit import here.
    assert set(registered_tiers()) >= {"p1", "hmatrix", "profile",
                                       "compiled"}


def test_session_rejects_sizes_with_existing_store(tmp_path):
    with pytest.raises(ValueError, match="size it directly"):
        Session(store=PlanStore(tmp_path), hmatrix_cache_size=64)
    with pytest.raises(ValueError, match="size it directly"):
        Session(store=PlanStore(tmp_path), p1_cache_size=4)
    # Sizes with a *path* store are fine (the session builds the store).
    with Session(store=tmp_path / "s", hmatrix_cache_size=4) as s:
        assert s.store._mem_for("hmatrix").maxsize == 4


class TestOrphanedTempFiles:
    """A crash-orphaned temp file must never break a healthy store."""

    def test_warm_and_entries_ignore_tmp_litter(self, store_dir):
        (store_dir / "deadbeef.1234.tmp.json").write_text("{partial")
        (store_dir / "deadbeef.1234.tmp.npz").write_bytes(b"partial")
        store = PlanStore(store_dir)
        assert store.warm() == 2           # tmp litter is not an artifact
        assert len(store.entries()) == 2
        assert store.cache_info()["disk_entries"] == 2

    def test_stale_orphans_swept(self, store_dir):
        import os
        import time

        orphan = store_dir / "deadbeef.1234.tmp.json"
        orphan.write_text("{partial")
        old = time.time() - 7200  # well past the 1-hour sweep cutoff
        os.utime(orphan, (old, old))
        PlanStore(store_dir).entries()
        assert not orphan.exists()

    def test_fresh_orphans_left_for_their_writer(self, store_dir):
        orphan = store_dir / "deadbeef.1234.tmp.json"
        orphan.write_text("{partial")   # mtime = now: writer may be alive
        PlanStore(store_dir).entries()
        assert orphan.exists()


def test_memory_hits_refresh_disk_eviction_recency(hmatrix_2d, p1_2d,
                                                   tmp_path):
    """The hot artifact (served from memory) must outlive a cold one when
    max_bytes forces an eviction."""
    import os
    import time

    store = PlanStore(tmp_path)  # unbounded while populating
    store.put_hmatrix(("hot",), hmatrix_2d)
    store.put_p1(("cold",), p1_2d)
    # Make both look old, then serve "hot" from the memory tier.
    old = time.time() - 3600
    for m in tmp_path.glob("*.json"):
        os.utime(m, (old, old))
    assert store.get_hmatrix(("hot",)) is not None  # memory hit
    assert store.stats.memory_hits == 1
    store.max_bytes = 1
    store.put_hmatrix(("new",), hmatrix_2d)  # triggers eviction
    names = {e["key"] for e in store.entries()}
    assert repr(("cold",)) not in names      # cold evicted first
    assert repr(("hot",)) in names or repr(("new",)) in names


def test_session_init_failure_leaks_no_executor(monkeypatch):
    """Bad store args must be rejected before any pool is constructed."""
    from repro.api import session as sess_mod

    def forbidden(*a, **k):
        raise AssertionError("Executor constructed before validation")

    monkeypatch.setattr(sess_mod, "Executor", forbidden)
    with pytest.raises(TypeError, match="store"):
        Session(store=42)
    with pytest.raises(ValueError, match="size it directly"):
        Session(store=PlanStore(), p1_cache_size=4)


def test_scans_tolerate_concurrent_eviction(store_dir, monkeypatch):
    """A manifest deleted between the glob and its read (another
    process's evictor) is a vanished entry, not corruption."""
    store = PlanStore(store_dir)
    real = PlanStore._read_manifest

    def evict_then_read(self, manifest_path):
        if manifest_path.exists():
            manifest_path.unlink()           # simulate a racing evictor
            manifest_path.with_suffix(".npz").unlink(missing_ok=True)
        return real(self, manifest_path)

    monkeypatch.setattr(PlanStore, "_read_manifest", evict_then_read)
    assert store.entries() == []             # skipped, no raw OSError
    assert store.warm() == 0
