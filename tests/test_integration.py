"""Cross-product integration matrix: kernels x structures x geometries.

End-to-end inspector+executor runs asserting accuracy against the dense
product on every supported combination — the compatibility surface a
downstream adopter relies on.
"""

import numpy as np
import pytest

from repro import inspector, relative_error
from repro.datasets import (
    dino_points,
    grid_points,
    sunflower_points,
    unit_sphere_points,
)
from repro.kernels import (
    GaussianKernel,
    InverseDistanceKernel,
    LaplaceKernel,
    Matern32Kernel,
    PolynomialKernel,
)

N = 500
Q = 3


def geometries():
    rng = np.random.default_rng(11)
    return {
        "uniform2d": rng.random((N, 2)),
        "grid2d": grid_points(N, 2),
        "curve3d": dino_points(N, seed=1),
        "sphere": unit_sphere_points(N, 3, seed=2),
        "sunflower": sunflower_points(N, seed=3),
        "clustered8d": np.concatenate([
            rng.normal(loc=c, scale=0.3, size=(N // 4, 8))
            for c in (0.0, 3.0, -3.0, 6.0)
        ]),
    }


GEOMS = geometries()

KERNELS = {
    "gaussian": GaussianKernel(bandwidth=1.0),
    "laplace": LaplaceKernel(bandwidth=1.0),
    "matern": Matern32Kernel(bandwidth=1.0),
    "inverse": InverseDistanceKernel(),
    "poly": PolynomialKernel(degree=2, offset=1.0),
}

STRUCTURES = ["hss", "h2-geometric", "h2-b"]

# Accuracy ceiling per kernel: singular/heavy-tailed kernels are harder for
# sampled ID; the polynomial kernel is globally low-rank (easy).
TOL = {"gaussian": 5e-4, "laplace": 5e-3, "matern": 5e-3,
       "inverse": 5e-2, "poly": 1e-6}


@pytest.mark.parametrize("geom", sorted(GEOMS))
@pytest.mark.parametrize("kname", sorted(KERNELS))
def test_h2_geometric_matrix(geom, kname):
    pts = GEOMS[geom]
    kernel = KERNELS[kname]
    H = inspector(pts, kernel=kernel, structure="h2-geometric", tau=0.65,
                  bacc=1e-7, leaf_size=32, seed=0)
    rng = np.random.default_rng(0)
    W = rng.random((len(pts), Q))
    exact = kernel.matrix(pts) @ W
    err = relative_error(H.matmul(W), exact)
    assert err < TOL[kname], f"{kname}/{geom}: eps={err:.2e}"


@pytest.mark.parametrize("structure", STRUCTURES)
@pytest.mark.parametrize("geom", ["uniform2d", "clustered8d"])
def test_structures_matrix(structure, geom):
    pts = GEOMS[geom]
    kernel = GaussianKernel(bandwidth=1.0 if geom == "uniform2d" else 3.0)
    H = inspector(pts, kernel=kernel, structure=structure, bacc=1e-7,
                  leaf_size=32, seed=0)
    rng = np.random.default_rng(1)
    W = rng.random((len(pts), Q))
    exact = kernel.matrix(pts) @ W
    err = relative_error(H.matmul(W), exact)
    assert err < 5e-3, f"{structure}/{geom}: eps={err:.2e}"


class TestEdgeGeometries:
    def test_tiny_problem_single_leaf(self):
        pts = np.random.default_rng(0).random((10, 2))
        kernel = GaussianKernel(0.5)
        H = inspector(pts, kernel=kernel, leaf_size=16, seed=0)
        W = np.random.default_rng(1).random((10, 2))
        np.testing.assert_allclose(H.matmul(W), kernel.matrix(pts) @ W,
                                   atol=1e-10)

    def test_duplicate_points(self):
        rng = np.random.default_rng(2)
        base = rng.random((100, 2))
        pts = np.vstack([base, base[:50]])  # 50 exact duplicates
        kernel = GaussianKernel(0.5)
        H = inspector(pts, kernel=kernel, leaf_size=16, bacc=1e-7, seed=0)
        W = rng.random((150, 2))
        err = relative_error(H.matmul(W), kernel.matrix(pts) @ W)
        assert err < 1e-3

    def test_collinear_points(self):
        t = np.linspace(0, 1, 300)
        pts = np.stack([t, 2 * t], axis=1)  # all on one line
        kernel = GaussianKernel(0.3)
        H = inspector(pts, kernel=kernel, leaf_size=32, bacc=1e-7, seed=0)
        W = np.random.default_rng(3).random((300, 2))
        err = relative_error(H.matmul(W), kernel.matrix(pts) @ W)
        assert err < 1e-4

    def test_extreme_scale_points(self):
        rng = np.random.default_rng(4)
        pts = rng.random((200, 2)) * 1e6
        kernel = GaussianKernel(bandwidth=2e5)
        H = inspector(pts, kernel=kernel, leaf_size=32, bacc=1e-7, seed=0)
        W = rng.random((200, 2))
        err = relative_error(H.matmul(W), kernel.matrix(pts) @ W)
        assert err < 1e-4

    def test_single_column_points(self):
        rng = np.random.default_rng(5)
        pts = rng.random((150, 1))
        kernel = GaussianKernel(0.2)
        H = inspector(pts, kernel=kernel, leaf_size=16, bacc=1e-8, seed=0)
        W = rng.random((150, 2))
        err = relative_error(H.matmul(W), kernel.matrix(pts) @ W)
        assert err < 1e-5


class TestDeterminism:
    def test_same_seed_same_hmatrix(self, points_2d, gaussian_kernel):
        H1 = inspector(points_2d, kernel=gaussian_kernel, leaf_size=32,
                       seed=7)
        H2 = inspector(points_2d, kernel=gaussian_kernel, leaf_size=32,
                       seed=7)
        np.testing.assert_array_equal(H1.cds.basis_buf, H2.cds.basis_buf)
        np.testing.assert_array_equal(H1.cds.near_buf, H2.cds.near_buf)
        np.testing.assert_array_equal(H1.cds.far_buf, H2.cds.far_buf)

    def test_repeated_matmul_deterministic(self, hmatrix_2d):
        W = np.random.default_rng(8).random((hmatrix_2d.dim, 4))
        np.testing.assert_array_equal(hmatrix_2d.matmul(W),
                                      hmatrix_2d.matmul(W))
