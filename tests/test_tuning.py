"""repro.tuning: profile-guided policy autotuning.

Covers the tentpole acceptance criteria:

* profiles round-trip through a PlanStore reopen with **zero re-tunes**
  (counter-asserted);
* ``order="auto"`` returns **bit-identical** results to every fixed
  policy it can select (orders x backends x float32/float64);
* re-tunes trigger exactly on the profile-key axes (width-bucket drift,
  pins, fingerprint);
* the satellite policy-resolution bugfixes (identity-against-None in
  ``Executor``; weakref-guarded engine identity) stay fixed.
"""

from __future__ import annotations

import gc

import numpy as np
import pytest

from repro.api.policy import (
    DEFAULT_POLICY,
    ExecutionPolicy,
    coalesce_policy,
    effective_cpu_count,
    resolve_policy,
)
from repro.api.service import KernelService
from repro.api.session import Session
from repro.api.store import PlanStore
from repro.api.plan import PlanConfig
from repro.core.executor import Executor
from repro.core.io import (
    PlanStoreError,
    load_tuning_profile,
    save_tuning_profile,
)
from repro.tuning import (
    Autotuner,
    TuningProfile,
    hmatrix_fingerprint,
    host_signature,
    policy_from_knobs,
    policy_knobs,
    tune,
    width_bucket,
)
from repro.tuning.profile import host_key, policy_pins

PLAN_32 = PlanConfig(leaf_size=32, bacc=1e-6, p=4, seed=0)


@pytest.fixture()
def H(points_2d, gaussian_kernel, inspector_small):
    return inspector_small.run(points_2d, gaussian_kernel)


@pytest.fixture()
def W(points_2d):
    return np.random.default_rng(3).random((len(points_2d), 8))


def make_tuner(**kw):
    """A fast test tuner: 1 rep, tiny trial panels."""
    kw.setdefault("reps", 1)
    kw.setdefault("trial_cols", 4)
    return Autotuner(**kw)


# --------------------------------------------------------------------------
# Keys: width bucket, host signature, HMatrix fingerprint.
# --------------------------------------------------------------------------

class TestProfileKeys:
    def test_width_bucket_power_of_two_ceiling(self):
        assert [width_bucket(q) for q in (1, 2, 3, 4, 5, 16, 17, 256, 257)] \
            == [1, 2, 4, 4, 8, 16, 32, 256, 512]
        assert width_bucket(0) == 1
        assert width_bucket(10**9) == 4096  # capped

    def test_host_signature_axes(self):
        host = host_signature()
        assert set(host) == {"cpus", "blas", "machine"}
        assert host["cpus"] == effective_cpu_count() >= 1
        assert isinstance(host["blas"], str) and host["blas"]
        # canonical key is stable and order-independent
        assert host_key(host) == host_key(dict(reversed(list(host.items()))))

    def test_effective_cpu_count_respects_affinity(self):
        import os
        if hasattr(os, "sched_getaffinity"):
            assert effective_cpu_count() == len(os.sched_getaffinity(0))
        assert effective_cpu_count() >= 1

    def test_fingerprint_is_content_not_identity(self, H, points_2d,
                                                 gaussian_kernel,
                                                 inspector_small, tmp_path):
        from repro.core.io import load_hmatrix, save_hmatrix

        fp = hmatrix_fingerprint(H)
        assert fp == hmatrix_fingerprint(H)
        # survives a save/load round trip (different Python object)
        save_hmatrix(H, tmp_path / "h.npz")
        H2 = load_hmatrix(tmp_path / "h.npz")
        assert H2 is not H and hmatrix_fingerprint(H2) == fp
        # a different operator fingerprints differently
        other = inspector_small.run(
            np.random.default_rng(99).random((400, 2)), gaussian_kernel)
        assert hmatrix_fingerprint(other) != fp

    def test_key_separates_pins(self, H):
        host = host_signature()
        fp = hmatrix_fingerprint(H)
        plain = TuningProfile.make_key(fp, 16, host, {})
        pinned = TuningProfile.make_key(fp, 16, host, {"q_chunk": 64})
        assert plain != pinned

    def test_policy_pins(self):
        assert policy_pins(ExecutionPolicy(order="auto")) == {}
        pins = policy_pins(ExecutionPolicy(order="auto", q_chunk=64,
                                           num_threads=2))
        assert pins == {"q_chunk": 64, "num_threads": 2}


# --------------------------------------------------------------------------
# Profile record: dict round trip, version skew, io artifacts.
# --------------------------------------------------------------------------

class TestProfileRecord:
    def make(self):
        return TuningProfile(
            hmatrix_fp="abc", width_bucket=16, host=host_signature(),
            policy={"order": "batched"},
            candidates=[{"policy": {"order": "batched"}, "seconds": 0.01,
                         "measured": True}],
            source="measured", margin=1.5, trials=2)

    def test_dict_round_trip(self):
        prof = self.make()
        clone = TuningProfile.from_dict(prof.to_dict())
        assert clone.key == prof.key
        assert clone.policy == prof.policy
        assert clone.best_policy() == ExecutionPolicy(order="batched")

    def test_version_skew_rejected(self):
        doc = self.make().to_dict()
        doc["version"] = 999
        with pytest.raises(ValueError, match="version"):
            TuningProfile.from_dict(doc)

    def test_malformed_policy_rejected(self):
        doc = self.make().to_dict()
        doc["policy"] = {"order": "no-such-order"}
        with pytest.raises(ValueError):
            TuningProfile.from_dict(doc)

    def test_io_round_trip_and_fail_closed(self, tmp_path):
        prof = self.make()
        path = save_tuning_profile(prof, tmp_path / "prof.npz")
        assert load_tuning_profile(path) == prof.to_dict()
        # truncation fails closed like every other artifact
        path.write_bytes(path.read_bytes()[:20])
        with pytest.raises(PlanStoreError):
            load_tuning_profile(path)

    def test_policy_knob_round_trip(self):
        pol = ExecutionPolicy(order="original", num_threads=2, q_chunk=64)
        assert policy_from_knobs(policy_knobs(pol)) == pol
        with pytest.raises(ValueError, match="unknown policy knob"):
            policy_from_knobs({"order": "batched", "bogus": 1})


# --------------------------------------------------------------------------
# Tuning runs: priors, measurement, pins, counters.
# --------------------------------------------------------------------------

class TestAutotuner:
    def test_prior_shortcut_below_measurement_floor(self, H):
        tuner = make_tuner(min_measured_flops=float("inf"))
        prof = tuner.tune(H, 8)
        assert prof.source == "prior" and prof.trials == 0
        assert tuner.stats.prior_shortcuts == 1
        assert all(not c["measured"] for c in prof.candidates)

    def test_measured_tuning_ranks_candidates(self, H):
        tuner = make_tuner(min_measured_flops=0.0)
        prof = tuner.tune(H, 8)
        assert prof.source == "measured" and prof.trials > 0
        secs = [c["seconds"] for c in prof.candidates]
        assert secs == sorted(secs)
        assert prof.policy == prof.candidates[0]["policy"]
        assert prof.margin >= 1.0

    def test_resolve_passes_fixed_policies_through(self, H):
        tuner = make_tuner()
        fixed = ExecutionPolicy(order="original", q_chunk=32)
        assert tuner.resolve(H, 8, fixed) is fixed
        assert tuner.stats.tunes == 0

    def test_resolve_auto_never_returns_auto(self, H):
        tuner = make_tuner()
        pol = tuner.resolve(H, 8, ExecutionPolicy(order="auto"))
        assert not pol.is_auto
        assert pol.order in ("batched", "original")

    def test_pinned_knobs_are_honored(self, H):
        tuner = make_tuner(min_measured_flops=0.0)
        pinned = ExecutionPolicy(order="auto", q_chunk=48)
        prof = tuner.profile_for(H, 8, pinned)
        assert prof.pins == {"q_chunk": 48}
        assert all(c["policy"]["q_chunk"] == 48 for c in prof.candidates)
        assert tuner.resolve(H, 8, pinned).q_chunk == 48

    def test_tree_order_never_a_candidate(self, H):
        # order="tree" changes the meaning of W's row order — auto must
        # never trade correctness for speed.
        tuner = make_tuner()
        for knobs in tuner.candidate_policies(H, 8):
            assert knobs["order"] != "tree"

    def test_memory_hit_on_second_resolve(self, H):
        tuner = make_tuner()
        tuner.resolve(H, 8, ExecutionPolicy(order="auto"))
        tuner.resolve(H, 8, ExecutionPolicy(order="auto"))
        assert tuner.stats.tunes == 1
        assert tuner.stats.memory_hits == 1

    def test_width_bucket_drift_retunes(self, H):
        tuner = make_tuner()
        auto = ExecutionPolicy(order="auto")
        tuner.resolve(H, 2, auto)
        tuner.resolve(H, 2, auto)        # same bucket: no re-tune
        tuner.resolve(H, 300, auto)      # bucket 512: re-tune
        assert tuner.stats.tunes == 2
        assert len(tuner.profiles()) == 2

    def test_fingerprint_memo_evicted_on_collection(
            self, inspector_small, gaussian_kernel):
        # The tuner's id()-keyed fingerprint memo is weakref-guarded like
        # every other identity cache: a recycled id must never serve (or
        # persist a profile under) a stale fingerprint.
        tuner = make_tuner()
        Hx = inspector_small.run(
            np.random.default_rng(55).random((300, 2)), gaussian_kernel)
        tuner.resolve(Hx, 2, ExecutionPolicy(order="auto"))
        key = id(Hx)
        assert key in tuner._fingerprints
        del Hx
        gc.collect()
        assert key not in tuner._fingerprints

    def test_concurrent_cold_resolutions_tune_once(self, H):
        import threading

        tuner = make_tuner(min_measured_flops=0.0)
        real_measure = tuner._measure
        started = threading.Barrier(4)

        def slow_measure(Hm, pol, W):
            return real_measure(Hm, pol, W)

        tuner._measure = slow_measure
        results = []

        def resolve():
            started.wait()
            results.append(tuner.resolve(H, 8, ExecutionPolicy(
                order="auto")))

        threads = [threading.Thread(target=resolve) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tuner.stats.tunes == 1        # one trial grid, not four
        assert len(set(results)) == 1        # everyone got the winner

    def test_wide_bucket_chunk_candidate_is_discriminated(self, H):
        # The q_chunk candidate only appears when the trial panel is
        # actually wide enough to tell it apart from the default chunk
        # (a candidate measured on identical work is pure noise).
        tuner = Autotuner(reps=1)           # default trial width
        for knobs in tuner.candidate_policies(H, 2048):
            chunk = knobs.get("q_chunk")
            if chunk is not None:
                assert chunk <= tuner._trial_width(2048)
                assert chunk > 256          # genuinely different chunking
        narrow = Autotuner(reps=1, trial_cols=4)
        assert all("q_chunk" not in knobs
                   for knobs in narrow.candidate_policies(H, 2048))

    def test_module_level_tune_convenience(self, H, tmp_path):
        store = PlanStore(tmp_path)
        prof = tune(H, q=8, store=store, reps=1)
        assert isinstance(prof, TuningProfile)
        assert store.get_profile(prof.key) == prof.to_dict()


# --------------------------------------------------------------------------
# Persistence: PlanStore round trip, zero re-tunes across "restarts".
# --------------------------------------------------------------------------

class TestProfilePersistence:
    def test_store_round_trip_zero_retunes(self, H, tmp_path):
        cold = make_tuner(store=PlanStore(tmp_path))
        cold.resolve(H, 8, ExecutionPolicy(order="auto"))
        assert cold.stats.tunes == 1

        # a "fresh process": new tuner, new PlanStore over the same dir
        warm = make_tuner(store=PlanStore(tmp_path))
        pol = warm.resolve(H, 8, ExecutionPolicy(order="auto"))
        assert warm.stats.tunes == 0          # zero re-tunes when warm
        assert warm.stats.store_hits == 1
        assert pol == cold.resolve(H, 8, ExecutionPolicy(order="auto"))

    def test_corrupt_stored_profile_degrades_to_retune(self, H, tmp_path):
        store = PlanStore(tmp_path)
        cold = make_tuner(store=store)
        prof = cold.profile_for(H, 8, ExecutionPolicy(order="auto"))
        # overwrite with a version-skewed doc: valid artifact, stale schema
        doc = prof.to_dict()
        doc["version"] = 999
        store.put_profile(prof.key, doc)
        store.clear_memory()
        warm = make_tuner(store=store)
        warm.profile_for(H, 8, ExecutionPolicy(order="auto"))
        assert warm.stats.tunes == 1          # skew = re-tune, not error

    def test_session_persists_profiles(self, points_2d, tmp_path):
        auto = ExecutionPolicy(order="auto")
        W = np.random.default_rng(0).random((len(points_2d), 8))
        with Session(plan=PLAN_32, policy=auto,
                     store=PlanStore(tmp_path)) as cold:
            Hc = cold.inspect(points_2d)
            Yc = cold.matmul(Hc, W)
            assert cold.cache_info()["autotune"]["tunes"] == 1

        with Session(plan=PLAN_32, policy=auto,
                     store=PlanStore(tmp_path)) as warm:
            Hw = warm.inspect(points_2d)
            Yw = warm.matmul(Hw, W)
            info = warm.cache_info()
        assert info["p1_builds"] == 0 and info["p2_builds"] == 0
        assert info["autotune"]["tunes"] == 0          # profile warm too
        assert info["autotune"]["store_hits"] == 1
        np.testing.assert_array_equal(Yc, Yw)


# --------------------------------------------------------------------------
# Equivalence matrix: auto is bit-identical to whatever it selects.
# --------------------------------------------------------------------------

FIXED_POLICIES = [
    ExecutionPolicy(order="batched"),
    ExecutionPolicy(order="original"),
    ExecutionPolicy(order="batched", q_chunk=64),
    ExecutionPolicy(order="original", num_threads=2),
    ExecutionPolicy(order="batched", backend="process", num_workers=0),
]


class TestAutoEquivalenceMatrix:
    """order="auto" must add *zero* numerical perturbation: for every
    fixed policy the tuner can select (orders x backends), resolving to
    it and evaluating yields bit-identical results, for float32 and
    float64 right-hand sides."""

    @pytest.mark.parametrize("fixed", FIXED_POLICIES,
                             ids=lambda p: f"{p.order}-{p.backend}"
                             f"-t{p.num_threads}-w{p.num_workers}"
                             f"-c{p.q_chunk}")
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_auto_bit_identical_to_selected_policy(self, H, points_2d,
                                                   fixed, dtype):
        W = np.random.default_rng(5).random(
            (len(points_2d), 8)).astype(dtype)
        tuner = make_tuner()
        # Pin the tuner's verdict to `fixed` by planting its profile.
        prof = TuningProfile(
            hmatrix_fp=hmatrix_fingerprint(H), width_bucket=width_bucket(8),
            host=tuner.host, policy=policy_knobs(fixed), source="measured")
        tuner._profiles[prof.key] = prof

        with Executor(policy=ExecutionPolicy(order="auto"),
                      autotuner=tuner) as ex_auto, \
                Executor(policy=fixed) as ex_fixed:
            Y_auto = ex_auto.matmul(H, W)
            Y_fixed = ex_fixed.matmul(H, W)
        assert tuner.stats.memory_hits >= 1   # the profile actually served
        np.testing.assert_array_equal(Y_auto, Y_fixed)

    def test_organically_tuned_auto_matches_winner(self, H, points_2d):
        W = np.random.default_rng(6).random((len(points_2d), 8))
        tuner = make_tuner(min_measured_flops=0.0)
        with Executor(policy=ExecutionPolicy(order="auto"),
                      autotuner=tuner) as ex:
            Y_auto = ex.matmul(H, W)
        winner = tuner.profiles()[0].best_policy()
        np.testing.assert_array_equal(Y_auto, H.matmul(W, policy=winner))


# --------------------------------------------------------------------------
# Service integration: auto under the dispatcher, drift re-tunes.
# --------------------------------------------------------------------------

class TestServiceAuto:
    def test_service_resolves_auto_and_reports_stats(self, points_2d):
        with KernelService(plan=PLAN_32,
                           policy=ExecutionPolicy(order="auto"),
                           max_batch=4, max_wait_ms=0.0) as service:
            service.register("pts", points_2d, kernel="gaussian")
            W = np.random.default_rng(0).random((len(points_2d), 4))
            Y = service.request("pts", W, timeout=60)
            stats = service.stats()
        assert Y.shape == (len(points_2d), 4)
        assert stats["autotune"]["tunes"] >= 1

    def test_batch_width_drift_retunes(self, points_2d):
        with KernelService(plan=PLAN_32,
                           policy=ExecutionPolicy(order="auto"),
                           max_batch=1, max_wait_ms=0.0) as service:
            service.register("pts", points_2d, kernel="gaussian",
                             warm=True)
            rng = np.random.default_rng(1)
            n = len(points_2d)
            service.request("pts", rng.random((n, 2)), timeout=60)
            t1 = service.stats()["autotune"]["tunes"]
            service.request("pts", rng.random((n, 2)), timeout=60)
            t2 = service.stats()["autotune"]["tunes"]
            service.request("pts", rng.random((n, 300)), timeout=60)
            t3 = service.stats()["autotune"]["tunes"]
        assert t1 == 1
        assert t2 == 1        # same bucket: served from the profile
        assert t3 == 2        # drifted bucket: exactly one re-tune


# --------------------------------------------------------------------------
# Satellite regressions: Executor policy resolution + engine identity.
# --------------------------------------------------------------------------

class FalsyPolicy(ExecutionPolicy):
    """A policy that is falsy — the exact hazard `policy or self.policy`
    had: an explicitly passed policy silently swapped for the default."""

    def __bool__(self) -> bool:  # pragma: no cover - trivial
        return False


class TestExecutorPolicyResolutionRegression:
    """Mirrors PR 4's Session.matmul tests for Executor.matmul /
    matmul_many / engine_for: identity-against-None is the contract."""

    def test_coalesce_policy_uses_identity(self):
        falsy = FalsyPolicy(order="original")
        assert coalesce_policy(falsy, DEFAULT_POLICY) is falsy
        assert coalesce_policy(None, DEFAULT_POLICY) is DEFAULT_POLICY

    def test_resolve_policy_honors_falsy_policy(self):
        assert resolve_policy(FalsyPolicy(order="original")).order \
            == "original"
        fallback = ExecutionPolicy(order="tree")
        assert resolve_policy(None, fallback=fallback).order == "tree"
        assert resolve_policy(FalsyPolicy(order="original"),
                              fallback=fallback).order == "original"

    def test_executor_matmul_honors_falsy_policy(self, H, W):
        captured = {}
        real = H.matmul

        def spy(W_, **kw):
            captured.update(kw)
            return real(W_, **kw)

        H.matmul = spy
        try:
            with Executor(policy=ExecutionPolicy(order="original",
                                                 q_chunk=96)) as ex:
                ex.matmul(H, W, policy=FalsyPolicy(order="batched",
                                                   q_chunk=32))
        finally:
            del H.matmul
        assert captured["order"] == "batched"      # not the executor's
        assert captured["q_chunk"] == 32

    def test_executor_matmul_many_honors_falsy_policy(self, H, W):
        captured = {}
        real = H.matmul

        def spy(W_, **kw):
            captured.update(kw)
            return real(W_, **kw)

        H.matmul = spy
        try:
            with Executor(policy=ExecutionPolicy(order="original")) as ex:
                ex.matmul_many(H, W, policy=FalsyPolicy(order="batched"))
        finally:
            del H.matmul
        assert captured["order"] == "batched"

    def test_engine_for_honors_falsy_policy(self, H):
        with Executor(policy=ExecutionPolicy(
                backend="process", num_workers=0, q_chunk=128)) as ex:
            engine = ex.engine_for(H, FalsyPolicy(
                backend="process", num_workers=0, q_chunk=32))
            assert engine.q_cap == 32              # not the executor's 128


class TestEngineIdentityRegression:
    """Satellite fix: engines are keyed by weakref-guarded identity.
    CPython reuses ids after collection, so an HMatrix's death must
    evict (and close) its engine before a recycled id can alias it."""

    def make_H(self, seed, inspector_small, gaussian_kernel):
        pts = np.random.default_rng(seed).random((300, 2))
        return inspector_small.run(pts, gaussian_kernel)

    def test_engine_evicted_and_closed_on_collection(
            self, inspector_small, gaussian_kernel):
        with Executor(policy=ExecutionPolicy(backend="process",
                                             num_workers=0)) as ex:
            H = self.make_H(21, inspector_small, gaussian_kernel)
            engine = ex.engine_for(H)
            assert len(ex._engines) == 1
            del H
            gc.collect()
            assert len(ex._engines) == 0           # finalizer evicted it
            assert engine.closed                   # and closed it
            assert engine.H is None                # weak ref, not a pin

    def test_id_reuse_never_aliases_a_stale_engine(
            self, inspector_small, gaussian_kernel):
        # Force the allocator toward id reuse: repeatedly drop an
        # HMatrix and build a similar one. Whether or not CPython
        # actually recycles the id, every lookup must yield an engine
        # whose H *is* the matrix asked about, with correct results.
        with Executor(policy=ExecutionPolicy(backend="process",
                                             num_workers=0)) as ex:
            seen_ids = set()
            reused = False
            for seed in range(6):
                H = self.make_H(seed, inspector_small, gaussian_kernel)
                reused |= id(H) in seen_ids
                seen_ids.add(id(H))
                engine = ex.engine_for(H)
                assert engine.H is H
                W = np.random.default_rng(seed).random((300, 3))
                np.testing.assert_array_equal(
                    engine.matmul(W), H.matmul(W, order="batched"))
                del H
                gc.collect()
            assert len(ex._engines) == 0

    def test_capacity_eviction_detaches_finalizer(
            self, inspector_small, gaussian_kernel):
        # An H dying *after* its engine was LRU-evicted must not close a
        # successor entry that may have recycled its id.
        with Executor(policy=ExecutionPolicy(backend="process",
                                             num_workers=0)) as ex:
            ex._max_engines = 1
            H1 = self.make_H(31, inspector_small, gaussian_kernel)
            H2 = self.make_H(32, inspector_small, gaussian_kernel)
            e1 = ex.engine_for(H1)
            e2 = ex.engine_for(H2)           # evicts e1 (capacity)
            assert e1.closed and not e2.closed
            del H1
            gc.collect()
            assert list(ex._engines.values())[0][0] is e2
            assert not e2.closed


class TestPointsFingerprintIdReuseRegression:
    """Satellite fix companion: the id()-keyed fingerprint memo must
    never serve a stale hash after collection recycles an id."""

    def test_forced_gc_evicts_memo_entry(self):
        from repro.api.session import _FP_CACHE, points_fingerprint

        pts = np.random.default_rng(41).random((128, 2))
        key = id(pts)
        points_fingerprint(pts)
        assert key in _FP_CACHE
        del pts
        gc.collect()
        assert key not in _FP_CACHE            # finalizer evicted it

    def test_id_reuse_yields_correct_fingerprints(self):
        from repro.api.session import points_fingerprint

        seen = {}
        reused = 0
        for seed in range(8):
            pts = np.random.default_rng(seed).random((256, 2))
            fp = points_fingerprint(pts)
            if id(pts) in seen:
                reused += 1
            seen[id(pts)] = fp
            # recompute from scratch (memo bypassed via a copy): the
            # memoized answer must match the true content hash
            assert points_fingerprint(pts.copy()) == fp
            del pts
            gc.collect()
