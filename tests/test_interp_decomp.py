"""Unit and property tests for interpolative decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import interpolative_decomposition


def lowrank_matrix(rng, s, m, r, noise=0.0):
    A = rng.normal(size=(s, r)) @ rng.normal(size=(r, m))
    if noise:
        A += noise * rng.normal(size=(s, m))
    return A


class TestInterpolativeDecomposition:
    def test_exact_rank_recovery(self, rng):
        G = lowrank_matrix(rng, 40, 30, 5)
        d = interpolative_decomposition(G, bacc=1e-10)
        assert d.rank == 5
        np.testing.assert_allclose(d.reconstruct(G), G, atol=1e-8)

    def test_identity_on_skeleton_columns(self, rng):
        G = lowrank_matrix(rng, 30, 20, 4)
        d = interpolative_decomposition(G, bacc=1e-10)
        np.testing.assert_allclose(
            d.interp[:, d.skeleton], np.eye(d.rank), atol=1e-12
        )

    def test_bacc_controls_rank(self, rng):
        # Geometrically decaying singular values: looser bacc -> smaller rank.
        U, _ = np.linalg.qr(rng.normal(size=(50, 20)))
        V, _ = np.linalg.qr(rng.normal(size=(40, 20)))
        s = 10.0 ** -np.arange(20, dtype=float)
        G = U @ np.diag(s) @ V.T
        loose = interpolative_decomposition(G, bacc=1e-2).rank
        tight = interpolative_decomposition(G, bacc=1e-8).rank
        assert loose < tight

    def test_reconstruction_error_tracks_bacc(self, rng):
        U, _ = np.linalg.qr(rng.normal(size=(60, 30)))
        V, _ = np.linalg.qr(rng.normal(size=(50, 30)))
        s = 2.0 ** -np.arange(30, dtype=float)
        G = U @ np.diag(s) @ V.T
        for bacc in (1e-2, 1e-4, 1e-6):
            d = interpolative_decomposition(G, bacc=bacc)
            rel = np.linalg.norm(d.reconstruct(G) - G) / np.linalg.norm(G)
            assert rel <= 50 * bacc  # pivot decay is a loose error proxy

    def test_max_rank_cap(self, rng):
        G = rng.normal(size=(50, 40))  # full rank
        d = interpolative_decomposition(G, bacc=1e-16, max_rank=7)
        assert d.rank == 7

    def test_fixed_rank_override(self, rng):
        G = rng.normal(size=(30, 25))
        d = interpolative_decomposition(G, rank=3)
        assert d.rank == 3

    def test_zero_matrix(self):
        G = np.zeros((10, 8))
        d = interpolative_decomposition(G, bacc=1e-5)
        assert d.rank == 1
        np.testing.assert_allclose(d.reconstruct(G), 0.0)

    def test_empty_sample_rows(self):
        G = np.zeros((0, 6))
        d = interpolative_decomposition(G)
        assert d.rank == 1
        assert d.interp.shape == (1, 6)

    def test_single_column(self, rng):
        G = rng.normal(size=(10, 1))
        d = interpolative_decomposition(G, bacc=1e-10)
        assert d.rank == 1
        np.testing.assert_allclose(d.reconstruct(G), G, atol=1e-12)

    def test_achieved_error_reported(self, rng):
        G = rng.normal(size=(30, 30))
        d = interpolative_decomposition(G, bacc=1e-1)
        assert 0.0 <= d.achieved_error <= 1e-1 * 10  # within an order

    def test_skeleton_indices_valid_and_unique(self, rng):
        G = rng.normal(size=(25, 18))
        d = interpolative_decomposition(G, bacc=1e-3)
        assert len(np.unique(d.skeleton)) == d.rank
        assert (d.skeleton >= 0).all() and (d.skeleton < 18).all()

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            interpolative_decomposition(np.zeros((3, 3, 3)))
        with pytest.raises(ValueError):
            interpolative_decomposition(np.zeros((5, 0)))

    @given(
        r=st.integers(1, 6),
        s=st.integers(8, 30),
        m=st.integers(7, 25),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_rank_never_exceeds_true_rank_plus_noise(self, r, s, m):
        rng = np.random.default_rng(r * 1000 + s * 10 + m)
        G = lowrank_matrix(rng, s, m, min(r, m, s))
        d = interpolative_decomposition(G, bacc=1e-9)
        assert d.rank <= min(r, m, s) + 1

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_property_reconstruction_beats_bacc_for_decaying_spectra(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(10, 30))
        s = m + 10
        U, _ = np.linalg.qr(rng.normal(size=(s, m)))
        V, _ = np.linalg.qr(rng.normal(size=(m, m)))
        sing = 3.0 ** -np.arange(m, dtype=float)
        G = U @ np.diag(sing) @ V.T
        d = interpolative_decomposition(G, bacc=1e-6)
        rel = np.linalg.norm(d.reconstruct(G) - G) / np.linalg.norm(G)
        assert rel < 1e-4
