"""Unit tests for IR construction, lowering decisions, and code emission."""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.analysis import build_blockset, build_coarsenset
from repro.codegen import build_ir, decide_lowering, generate_evaluator
from repro.compression import compress
from repro.core.evaluation import evaluate_reference
from repro.storage import build_cds


def make_cds(points, kernel, structure="h2-geometric", **kw):
    res = compress(points, kernel, structure=structure, bacc=1e-6,
                   leaf_size=32, seed=0, **kw)
    cs = build_coarsenset(res.tree, res.sranks, p=4, agg=2)
    nb = build_blockset(res.htree, 2, kind="near")
    fb = build_blockset(res.htree, 4, kind="far")
    return res, build_cds(res.factors, cs, nb, fb)


@pytest.fixture(scope="module")
def cds_2d(points_2d, gaussian_kernel):
    return make_cds(points_2d, gaussian_kernel)


@pytest.fixture(scope="module")
def cds_hss(points_2d, gaussian_kernel):
    return make_cds(points_2d, gaussian_kernel, structure="hss")


class TestIR:
    def test_loops_present(self, cds_2d):
        res, cds = cds_2d
        ir = build_ir(res.factors, cds.coarsenset, cds.near_blockset,
                      cds.far_blockset)
        assert set(ir.loops) == {"near", "upward", "coupling", "downward"}
        assert ir.loop("near").kind == "reduction"
        assert ir.loop("upward").kind == "tree"

    def test_trip_counts(self, cds_2d):
        res, cds = cds_2d
        ir = build_ir(res.factors)
        assert ir.loop("near").trip_count == res.htree.num_near()
        assert ir.loop("coupling").trip_count == res.htree.num_far()

    def test_upward_downward_reversed(self, cds_2d):
        res, _ = cds_2d
        ir = build_ir(res.factors)
        up = ir.loop("upward").iterations
        down = ir.loop("downward").iterations
        assert up == list(reversed(down))


class TestLoweringDecision:
    def test_h2_activates_block_and_coarsen(self, cds_2d):
        res, cds = cds_2d
        ir = build_ir(res.factors, cds.coarsenset, cds.near_blockset,
                      cds.far_blockset)
        d = decide_lowering(ir)
        assert d.block_near      # dense near list for tau=0.65
        assert d.coarsen

    def test_hss_never_blocks(self, cds_hss):
        """Paper: 'block lowering is never activated for HSS'."""
        res, cds = cds_hss
        ir = build_ir(res.factors, cds.coarsenset, cds.near_blockset,
                      cds.far_blockset)
        d = decide_lowering(ir)
        assert not d.block_near
        assert not d.block_far
        assert d.coarsen

    def test_coarsen_threshold_gates(self, cds_2d):
        res, cds = cds_2d
        ir = build_ir(res.factors, cds.coarsenset, cds.near_blockset,
                      cds.far_blockset)
        d = decide_lowering(ir, coarsen_threshold=10_000)
        assert not d.coarsen
        assert not d.peel_root  # peeling requires coarsening

    def test_low_level_flag(self, cds_2d):
        res, cds = cds_2d
        ir = build_ir(res.factors, cds.coarsenset, cds.near_blockset,
                      cds.far_blockset)
        d = decide_lowering(ir, low_level=False)
        assert not d.peel_root

    def test_reasons_populated(self, cds_2d):
        res, cds = cds_2d
        ir = build_ir(res.factors, cds.coarsenset, cds.near_blockset,
                      cds.far_blockset)
        d = decide_lowering(ir)
        assert len(d.reasons) >= 3

    def test_ir_loops_annotated(self, cds_2d):
        res, cds = cds_2d
        ir = build_ir(res.factors, cds.coarsenset, cds.near_blockset,
                      cds.far_blockset)
        decide_lowering(ir)
        assert ir.loop("upward").lowered_to == "coarsened"


class TestGeneratedCode:
    def test_matches_reference(self, cds_2d):
        res, cds = cds_2d
        ev = generate_evaluator(cds)
        rng = np.random.default_rng(0)
        W = rng.random((res.tree.num_points, 5))
        np.testing.assert_allclose(
            ev(W), evaluate_reference(res.factors, W), atol=1e-10
        )

    def test_hss_matches_reference(self, cds_hss):
        res, cds = cds_hss
        ev = generate_evaluator(cds)
        rng = np.random.default_rng(1)
        W = rng.random((res.tree.num_points, 3))
        np.testing.assert_allclose(
            ev(W), evaluate_reference(res.factors, W), atol=1e-10
        )

    def test_all_lowering_combinations_agree(self, cds_2d):
        """Every specialization must compute the same product."""
        res, cds = cds_2d
        rng = np.random.default_rng(2)
        W = rng.random((res.tree.num_points, 4))
        ref = evaluate_reference(res.factors, W)
        for block_thr, coars_thr, low in [
            (None, 4, True),       # fully lowered
            (10**9, 4, True),      # no blocking
            (None, 10**9, True),   # no coarsening
            (10**9, 10**9, False), # fully serial
            (None, 4, False),      # no peeling
        ]:
            ev = generate_evaluator(cds, block_threshold=block_thr,
                                    far_block_threshold=block_thr,
                                    coarsen_threshold=coars_thr,
                                    low_level=low)
            np.testing.assert_allclose(ev(W), ref, atol=1e-10,
                                       err_msg=str((block_thr, coars_thr, low)))

    def test_parallel_pool_agrees_with_serial(self, cds_2d):
        res, cds = cds_2d
        ev = generate_evaluator(cds)
        rng = np.random.default_rng(3)
        W = rng.random((res.tree.num_points, 4))
        serial = ev(W)
        with ThreadPoolExecutor(max_workers=4) as pool:
            parallel = ev(W, pool=pool)
        np.testing.assert_allclose(parallel, serial, atol=1e-12)

    def test_matvec_1d_input(self, cds_2d):
        res, cds = cds_2d
        ev = generate_evaluator(cds)
        rng = np.random.default_rng(4)
        w = rng.random(res.tree.num_points)
        y = ev(w)
        assert y.shape == (res.tree.num_points,)
        y2 = ev(w[:, None])
        np.testing.assert_allclose(y, y2[:, 0], atol=1e-12)

    def test_wrong_dimension_rejected(self, cds_2d):
        _res, cds = cds_2d
        ev = generate_evaluator(cds)
        with pytest.raises(ValueError, match="rows"):
            ev(np.zeros((3, 2)))

    def test_source_reflects_decision(self, cds_2d):
        _res, cds = cds_2d
        ev = generate_evaluator(cds)
        assert "near=blocked" in ev.source
        assert "tree=coarsened" in ev.source
        assert "def hmatmul" in ev.source

    def test_source_serial_variant(self, cds_2d):
        _res, cds = cds_2d
        ev = generate_evaluator(cds, block_threshold=10**9,
                                far_block_threshold=10**9,
                                coarsen_threshold=10**9)
        assert "near=serial" in ev.source
        assert "tree=serial" in ev.source

    def test_peeled_source_marker(self, cds_2d):
        _res, cds = cds_2d
        ev = generate_evaluator(cds, low_level=True)
        if ev.decision.peel_root:
            assert "Peeled root iteration" in ev.source

    def test_repeated_calls_consistent(self, cds_2d):
        res, cds = cds_2d
        ev = generate_evaluator(cds)
        rng = np.random.default_rng(5)
        W = rng.random((res.tree.num_points, 2))
        np.testing.assert_array_equal(ev(W), ev(W))
