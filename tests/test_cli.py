"""End-to-end tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture()
def points_file(tmp_path, rng):
    path = tmp_path / "pts.npy"
    np.save(path, np.random.default_rng(3).random((400, 2)))
    return path


class TestInspectCommand:
    def test_inspect_points_file(self, points_file, tmp_path, capsys):
        out = tmp_path / "h.npz"
        rc = main(["inspect", str(points_file), "-o", str(out),
                   "--leaf-size", "32", "--bandwidth", "0.5"])
        assert rc == 0
        assert out.exists()
        assert "inspected N=400" in capsys.readouterr().out

    def test_inspect_named_dataset(self, tmp_path, capsys):
        out = tmp_path / "h.npz"
        rc = main(["inspect", "unit", "-n", "500", "-o", str(out),
                   "--structure", "hss", "--leaf-size", "32"])
        assert rc == 0
        assert "hss" in capsys.readouterr().out

    def test_inspect_save_and_reuse_p1(self, points_file, tmp_path, capsys):
        h1 = tmp_path / "h1.npz"
        p1 = tmp_path / "p1.npz"
        rc = main(["inspect", str(points_file), "-o", str(h1),
                   "--save-p1", str(p1), "--leaf-size", "32",
                   "--bandwidth", "0.5"])
        assert rc == 0 and p1.exists()
        h2 = tmp_path / "h2.npz"
        rc = main(["inspect", str(points_file), "-o", str(h2),
                   "--reuse-p1", str(p1), "--leaf-size", "32",
                   "--bacc", "1e-3", "--bandwidth", "0.5"])
        assert rc == 0
        assert "reusing phase-1" in capsys.readouterr().out


class TestEvaluateCommand:
    def test_evaluate_random_w(self, points_file, tmp_path, capsys):
        h = tmp_path / "h.npz"
        main(["inspect", str(points_file), "-o", str(h),
              "--leaf-size", "32", "--bandwidth", "0.5"])
        rc = main(["evaluate", str(h), "-q", "4"])
        assert rc == 0
        assert "GF/s" in capsys.readouterr().out

    def test_evaluate_matches_library_call(self, points_file, tmp_path):
        from repro.core.io import load_hmatrix

        h = tmp_path / "h.npz"
        w_path = tmp_path / "w.npy"
        y_path = tmp_path / "y.npy"
        main(["inspect", str(points_file), "-o", str(h),
              "--leaf-size", "32", "--bandwidth", "0.5"])
        W = np.random.default_rng(1).random((400, 3))
        np.save(w_path, W)
        rc = main(["evaluate", str(h), "--w", str(w_path),
                   "-o", str(y_path)])
        assert rc == 0
        H = load_hmatrix(h)
        np.testing.assert_allclose(np.load(y_path), H.matmul(W), atol=1e-12)


class TestTuneCommand:
    @pytest.fixture()
    def hmat(self, points_file, tmp_path):
        h = tmp_path / "h.npz"
        main(["inspect", str(points_file), "-o", str(h),
              "--leaf-size", "32", "--bandwidth", "0.5"])
        return h

    def test_tune_prints_ranking_and_persists(self, hmat, tmp_path,
                                              capsys):
        store = tmp_path / "profiles"
        rc = main(["tune", str(hmat), "-q", "4", "32",
                   "--reps", "1", "--store", str(store)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "winner" in out and "host:" in out
        assert store.exists()
        from repro.api.store import PlanStore
        assert PlanStore(store).cache_info()["disk_entries"] == 2

    def test_evaluate_order_auto_reuses_profiles(self, hmat, tmp_path,
                                                 capsys):
        store = tmp_path / "profiles"
        rc = main(["tune", str(hmat), "-q", "8",
                   "--reps", "1", "--store", str(store)])
        assert rc == 0
        capsys.readouterr()
        rc = main(["evaluate", str(hmat), "-q", "8", "--order", "auto",
                   "--store", str(store)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "auto policy ->" in out
        assert "order=auto" not in out     # resolved, never run raw

    def test_evaluate_order_auto_without_store(self, hmat, capsys):
        rc = main(["evaluate", str(hmat), "-q", "4", "--order", "auto"])
        assert rc == 0
        assert "auto policy ->" in capsys.readouterr().out

    def test_serve_order_auto(self, request_file, tmp_path, capsys):
        rc = main(["serve", "--requests", str(request_file),
                   "--order", "auto", "--max-batch", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "autotune:" in out


class TestInfoCommand:
    def test_info(self, points_file, tmp_path, capsys):
        h = tmp_path / "h.npz"
        main(["inspect", str(points_file), "-o", str(h),
              "--leaf-size", "32", "--bandwidth", "0.5"])
        rc = main(["info", str(h)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean_srank" in out and "N" in out

    def test_info_with_source(self, points_file, tmp_path, capsys):
        h = tmp_path / "h.npz"
        main(["inspect", str(points_file), "-o", str(h),
              "--leaf-size", "32", "--bandwidth", "0.5"])
        rc = main(["info", str(h), "--source"])
        assert rc == 0
        assert "def hmatmul" in capsys.readouterr().out


@pytest.fixture()
def request_file(tmp_path, points_file):
    path = tmp_path / "requests.json"
    path.write_text(json.dumps({
        "datasets": {
            "pts": {"points": str(points_file), "kernel": "gaussian",
                    "bandwidth": 0.5, "leaf_size": 32, "seed": 0},
        },
        "requests": [
            {"points_id": "pts", "q": 4, "seed": 0},
            {"points_id": "pts", "q": 1, "seed": 1},
            {"points_id": "pts", "q": 2, "seed": 2},
        ],
    }))
    return path


class TestCompileCommand:
    def test_compile_single_points(self, points_file, tmp_path, capsys):
        rc = main(["compile", str(points_file), "--store",
                   str(tmp_path / "store"), "--leaf-size", "32",
                   "--bandwidth", "0.5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "compiled" in out and "2 artifact(s)" in out
        assert len(list((tmp_path / "store").glob("*.npz"))) == 2

    def test_compile_request_file(self, request_file, tmp_path, capsys):
        rc = main(["compile", "--requests", str(request_file),
                   "--store", str(tmp_path / "store")])
        assert rc == 0
        assert "compiled pts" in capsys.readouterr().out

    def test_compile_is_idempotent(self, request_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["compile", "--requests", str(request_file), "--store", store])
        rc = main(["compile", "--requests", str(request_file),
                   "--store", store])
        assert rc == 0
        assert "hmatrix_hits=1" in capsys.readouterr().out

    def test_compile_without_spec_errors(self, tmp_path, capsys):
        rc = main(["compile", "--store", str(tmp_path / "store")])
        assert rc == 2
        assert "points spec or --requests" in capsys.readouterr().err


class TestServeCommand:
    def test_serve_cold(self, request_file, capsys):
        rc = main(["serve", "--requests", str(request_file)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "served 3 request(s)" in out
        assert "p1_builds=1" in out

    def test_compile_then_serve_is_warm(self, request_file, tmp_path,
                                        capsys):
        store = str(tmp_path / "store")
        main(["compile", "--requests", str(request_file), "--store", store])
        rc = main(["serve", "--requests", str(request_file),
                   "--store", store, "--expect-warm"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "p1_builds=0, p2_builds=0" in out
        assert "store_disk_hits=1" in out

    def test_expect_warm_fails_without_compile(self, request_file, tmp_path,
                                               capsys):
        rc = main(["serve", "--requests", str(request_file),
                   "--store", str(tmp_path / "empty"), "--expect-warm"])
        assert rc == 1
        assert "--expect-warm" in capsys.readouterr().err

    def test_serve_matches_library_product(self, request_file, points_file,
                                           tmp_path, capsys):
        """The served p50/p99 lines exist and the batching knobs parse."""
        rc = main(["serve", "--requests", str(request_file),
                   "--max-batch", "2", "--max-wait-ms", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "latency p50" in out and "mean_batch" in out

    def test_bad_request_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"no_datasets": {}}))
        with pytest.raises(SystemExit, match="datasets"):
            main(["serve", "--requests", str(bad)])

    def test_serve_manifest_next_to_store(self, request_file, tmp_path,
                                          capsys):
        from repro.observability import RunManifest

        store = str(tmp_path / "store")
        main(["compile", "--requests", str(request_file), "--store", store])
        rc = main(["serve", "--requests", str(request_file),
                   "--store", store, "--manifest"])
        assert rc == 0
        assert "run manifest ->" in capsys.readouterr().out
        files = list((tmp_path / "store" / "manifests").glob("run-*.json"))
        assert len(files) == 1
        m = RunManifest.from_json(files[0].read_text())
        m.validate()
        assert m.doc["stats"]["service"]["served"] == 3

    def test_serve_manifest_explicit_path(self, request_file, tmp_path,
                                          capsys):
        from repro.observability import RunManifest

        target = tmp_path / "out.json"
        rc = main(["serve", "--requests", str(request_file),
                   "--manifest", str(target)])
        assert rc == 0
        RunManifest.from_json(target.read_text()).validate()

    def test_serve_manifest_flag_requires_store(self, request_file):
        with pytest.raises(SystemExit, match="--manifest"):
            main(["serve", "--requests", str(request_file), "--manifest"])


class TestDatasetsCommand:
    def test_list(self, capsys):
        rc = main(["datasets"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "covtype" in out and "sunflower" in out

    def test_emit(self, tmp_path, capsys):
        out = tmp_path / "grid.npy"
        rc = main(["datasets", "--emit", "grid", "-n", "200",
                   "-o", str(out)])
        assert rc == 0
        pts = np.load(out)
        assert pts.shape == (200, 2)


def test_serve_unknown_points_id_clean_error(tmp_path, points_file):
    doc = {"datasets": {"pts": {"points": str(points_file),
                                "leaf_size": 32}},
           "requests": [{"points_id": "typo", "q": 1}]}
    path = tmp_path / "req.json"
    path.write_text(json.dumps(doc))
    with pytest.raises(SystemExit, match="typo"):
        main(["serve", "--requests", str(path)])


def test_serve_request_missing_points_id_clean_error(tmp_path, points_file):
    doc = {"datasets": {"pts": {"points": str(points_file),
                                "leaf_size": 32}},
           "requests": [{"q": 1}]}
    path = tmp_path / "req.json"
    path.write_text(json.dumps(doc))
    with pytest.raises(SystemExit, match="None"):
        main(["serve", "--requests", str(path)])


def test_spec_rejects_unknown_keys_and_accepts_p(tmp_path, points_file):
    doc = {"datasets": {"pts": {"points": str(points_file),
                                "leafsize": 32}},  # typo
           "requests": []}
    path = tmp_path / "req.json"
    path.write_text(json.dumps(doc))
    with pytest.raises(SystemExit, match="leafsize"):
        main(["serve", "--requests", str(path)])
    doc["datasets"]["pts"] = {"points": str(points_file),
                              "leaf_size": 64, "p": 2}  # p is pinnable
    path.write_text(json.dumps(doc))
    assert main(["serve", "--requests", str(path)]) == 0
