"""End-to-end tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture()
def points_file(tmp_path, rng):
    path = tmp_path / "pts.npy"
    np.save(path, np.random.default_rng(3).random((400, 2)))
    return path


class TestInspectCommand:
    def test_inspect_points_file(self, points_file, tmp_path, capsys):
        out = tmp_path / "h.npz"
        rc = main(["inspect", str(points_file), "-o", str(out),
                   "--leaf-size", "32", "--bandwidth", "0.5"])
        assert rc == 0
        assert out.exists()
        assert "inspected N=400" in capsys.readouterr().out

    def test_inspect_named_dataset(self, tmp_path, capsys):
        out = tmp_path / "h.npz"
        rc = main(["inspect", "unit", "-n", "500", "-o", str(out),
                   "--structure", "hss", "--leaf-size", "32"])
        assert rc == 0
        assert "hss" in capsys.readouterr().out

    def test_inspect_save_and_reuse_p1(self, points_file, tmp_path, capsys):
        h1 = tmp_path / "h1.npz"
        p1 = tmp_path / "p1.npz"
        rc = main(["inspect", str(points_file), "-o", str(h1),
                   "--save-p1", str(p1), "--leaf-size", "32",
                   "--bandwidth", "0.5"])
        assert rc == 0 and p1.exists()
        h2 = tmp_path / "h2.npz"
        rc = main(["inspect", str(points_file), "-o", str(h2),
                   "--reuse-p1", str(p1), "--leaf-size", "32",
                   "--bacc", "1e-3", "--bandwidth", "0.5"])
        assert rc == 0
        assert "reusing phase-1" in capsys.readouterr().out


class TestEvaluateCommand:
    def test_evaluate_random_w(self, points_file, tmp_path, capsys):
        h = tmp_path / "h.npz"
        main(["inspect", str(points_file), "-o", str(h),
              "--leaf-size", "32", "--bandwidth", "0.5"])
        rc = main(["evaluate", str(h), "-q", "4"])
        assert rc == 0
        assert "GF/s" in capsys.readouterr().out

    def test_evaluate_matches_library_call(self, points_file, tmp_path):
        from repro.core.io import load_hmatrix

        h = tmp_path / "h.npz"
        w_path = tmp_path / "w.npy"
        y_path = tmp_path / "y.npy"
        main(["inspect", str(points_file), "-o", str(h),
              "--leaf-size", "32", "--bandwidth", "0.5"])
        W = np.random.default_rng(1).random((400, 3))
        np.save(w_path, W)
        rc = main(["evaluate", str(h), "--w", str(w_path),
                   "-o", str(y_path)])
        assert rc == 0
        H = load_hmatrix(h)
        np.testing.assert_allclose(np.load(y_path), H.matmul(W), atol=1e-12)


class TestInfoCommand:
    def test_info(self, points_file, tmp_path, capsys):
        h = tmp_path / "h.npz"
        main(["inspect", str(points_file), "-o", str(h),
              "--leaf-size", "32", "--bandwidth", "0.5"])
        rc = main(["info", str(h)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean_srank" in out and "N" in out

    def test_info_with_source(self, points_file, tmp_path, capsys):
        h = tmp_path / "h.npz"
        main(["inspect", str(points_file), "-o", str(h),
              "--leaf-size", "32", "--bandwidth", "0.5"])
        rc = main(["info", str(h), "--source"])
        assert rc == 0
        assert "def hmatmul" in capsys.readouterr().out


class TestDatasetsCommand:
    def test_list(self, capsys):
        rc = main(["datasets"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "covtype" in out and "sunflower" in out

    def test_emit(self, tmp_path, capsys):
        out = tmp_path / "grid.npy"
        rc = main(["datasets", "--emit", "grid", "-n", "200",
                   "-o", str(out)])
        assert rc == 0
        pts = np.load(out)
        assert pts.shape == (200, 2)
