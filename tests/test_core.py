"""Integration tests for the core framework: inspector, executor, HMatrix,
and the inspection-reuse path (Section 5 of the paper)."""

import numpy as np
import pytest

from repro import (
    Executor,
    Inspector,
    get_kernel,
    inspector,
    inspector_p1,
    inspector_p2,
    matmul,
    relative_error,
)
from repro.core.evaluation import evaluate_reference


class TestInspectorExecutor:
    def test_end_to_end_accuracy(self, points_2d, gaussian_kernel):
        H = inspector(points_2d, kernel=gaussian_kernel, leaf_size=32,
                      bacc=1e-7, seed=0)
        rng = np.random.default_rng(0)
        W = rng.random((600, 8))
        Y = matmul(H, W)
        exact = gaussian_kernel.matrix(points_2d) @ W
        assert relative_error(Y, exact) < 1e-4

    def test_matmul_operator(self, hmatrix_2d):
        rng = np.random.default_rng(1)
        W = rng.random((hmatrix_2d.dim, 3))
        np.testing.assert_allclose(hmatrix_2d @ W, hmatrix_2d.matmul(W))

    def test_original_order_permutation_correct(self, hmatrix_2d, points_2d,
                                                gaussian_kernel):
        """Row i of Y must correspond to input point i, not tree position."""
        rng = np.random.default_rng(2)
        W = rng.random((600, 2))
        Y = hmatrix_2d.matmul(W, order="original")
        exact = gaussian_kernel.matrix(points_2d) @ W
        # Errors should be uniformly small — a permutation bug would make
        # rows wildly wrong while the norm may stay moderate.
        row_err = np.abs(Y - exact).max(axis=1)
        assert row_err.max() < 1e-3

    def test_tree_order_skips_permutation(self, hmatrix_2d):
        rng = np.random.default_rng(3)
        W = rng.random((hmatrix_2d.dim, 2))
        perm = hmatrix_2d.tree.perm
        y_orig = hmatrix_2d.matmul(W, order="original")
        y_tree = hmatrix_2d.matmul(W[perm], order="tree")
        np.testing.assert_allclose(y_orig[perm], y_tree, atol=1e-12)

    def test_invalid_order(self, hmatrix_2d):
        with pytest.raises(ValueError, match="order"):
            hmatrix_2d.matmul(np.zeros((hmatrix_2d.dim, 1)), order="bfs")

    def test_matvec(self, hmatrix_2d):
        rng = np.random.default_rng(4)
        w = rng.random(hmatrix_2d.dim)
        y = hmatrix_2d.matmul(w)
        assert y.shape == (hmatrix_2d.dim,)

    def test_executor_pool_agrees(self, hmatrix_2d):
        rng = np.random.default_rng(5)
        W = rng.random((hmatrix_2d.dim, 4))
        serial = matmul(hmatrix_2d, W)
        with Executor(num_threads=4) as ex:
            threaded = ex.matmul(hmatrix_2d, W)
        np.testing.assert_allclose(threaded, serial, atol=1e-12)

    def test_executor_invalid_threads(self):
        with pytest.raises(ValueError):
            Executor(num_threads=0)

    def test_summary_fields(self, hmatrix_2d):
        s = hmatrix_2d.summary()
        assert s["N"] == 600
        assert s["structure"] == "h2-geometric"
        assert s["mean_srank"] > 0
        assert 0 < s["memory_mb"] < 100

    def test_shape_and_dim(self, hmatrix_2d):
        assert hmatrix_2d.shape == (600, 600)
        assert hmatrix_2d.dim == 600

    def test_generated_evaluator_agrees_with_reference(self, hmatrix_2d):
        rng = np.random.default_rng(6)
        W = rng.random((hmatrix_2d.dim, 3))
        Wt = W[hmatrix_2d.tree.perm]
        np.testing.assert_allclose(
            hmatrix_2d.evaluator(Wt),
            evaluate_reference(hmatrix_2d.factors, Wt),
            atol=1e-10,
        )


class TestInspectionReuse:
    """Section 5: inspector_p1 reused across kernel/accuracy changes."""

    def test_p1_plus_p2_equals_full(self, points_2d, gaussian_kernel):
        insp = Inspector(leaf_size=32, bacc=1e-5, seed=0, p=4)
        full = insp.run(points_2d, gaussian_kernel)
        p1 = insp.run_p1(points_2d)
        split = insp.run_p2(p1, gaussian_kernel)
        rng = np.random.default_rng(0)
        W = rng.random((600, 3))
        np.testing.assert_allclose(full.matmul(W), split.matmul(W), atol=1e-10)

    def test_accuracy_change_reuses_p1(self, p1_2d, inspector_small,
                                       points_2d, gaussian_kernel):
        rng = np.random.default_rng(1)
        W = rng.random((600, 2))
        exact = gaussian_kernel.matrix(points_2d) @ W
        errs = []
        for bacc in (1e-2, 1e-4, 1e-7):
            H = inspector_small.run_p2(p1_2d, gaussian_kernel, bacc=bacc)
            errs.append(relative_error(H.matmul(W), exact))
        assert errs[-1] < errs[0]  # tighter bacc -> better overall accuracy

    def test_kernel_change_reuses_p1(self, p1_2d, inspector_small, points_2d):
        rng = np.random.default_rng(2)
        W = rng.random((600, 2))
        for name, params in [("gaussian", {"bandwidth": 0.5}),
                             ("laplace", {"bandwidth": 0.7}),
                             ("matern32", {"bandwidth": 0.6})]:
            k = get_kernel(name, **params)
            H = inspector_small.run_p2(p1_2d, k)
            exact = k.matrix(points_2d) @ W
            err = relative_error(H.matmul(W), exact)
            assert err < 1e-2, f"{name}: {err}"

    def test_p1_is_kernel_independent(self, p1_2d):
        """p1 artifacts must not encode anything about kernel or bacc."""
        assert not hasattr(p1_2d, "factors")
        assert p1_2d.plan is not None
        assert p1_2d.near_blockset.num_interactions() == p1_2d.htree.num_near()

    def test_p2_timings_exclude_p1_modules(self, p1_2d, inspector_small,
                                           gaussian_kernel):
        H = inspector_small.run_p2(p1_2d, gaussian_kernel)
        t2 = H.metadata["timings_p2"]
        assert set(t2) == {"low_rank_approximation", "coarsening",
                           "data_layout", "code_generation"}
        t1 = H.metadata["timings_p1"]
        assert set(t1) == {"tree_construction", "interaction_computation",
                           "sampling", "blocking"}

    def test_functional_api(self, points_2d, gaussian_kernel):
        p1 = inspector_p1(points_2d, leaf_size=32, seed=0)
        H = inspector_p2(p1, gaussian_kernel, bacc=1e-5, leaf_size=32, p=2)
        rng = np.random.default_rng(3)
        W = rng.random((600, 2))
        exact = gaussian_kernel.matrix(points_2d) @ W
        assert relative_error(H.matmul(W), exact) < 1e-2


class TestStructures:
    @pytest.mark.parametrize("structure", ["hss", "h2-geometric", "h2-b"])
    def test_each_structure_end_to_end(self, points_2d, gaussian_kernel,
                                       structure):
        H = inspector(points_2d, kernel=gaussian_kernel, structure=structure,
                      leaf_size=32, bacc=1e-6, seed=0)
        rng = np.random.default_rng(7)
        W = rng.random((600, 2))
        exact = gaussian_kernel.matrix(points_2d) @ W
        assert relative_error(H.matmul(W), exact) < 1e-3

    def test_hss_lowering_flags(self, points_2d, gaussian_kernel):
        H = inspector(points_2d, kernel=gaussian_kernel, structure="hss",
                      leaf_size=32, seed=0)
        low = H.summary()["lowering"]
        assert not low["block_near"] and not low["block_far"]
        assert low["coarsen"]

    def test_h2_lowering_flags(self, points_2d, gaussian_kernel):
        H = inspector(points_2d, kernel=gaussian_kernel,
                      structure="h2-geometric", tau=0.65,
                      leaf_size=32, seed=0)
        low = H.summary()["lowering"]
        assert low["block_near"]
        assert low["coarsen"]
