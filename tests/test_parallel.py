"""Tests for the process-parallel sharded backend (``backend="process"``).

Covers the ISSUE 3 checklist: process-vs-thread-vs-serial equivalence,
worker-count edge cases (0 / 1 / more workers than shard units), pool
reuse across ``matmul_many`` calls, and clean teardown (no leaked
shared-memory segments, no resource-tracker complaints).
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro import (
    Executor,
    ExecutionPolicy,
    ProcessEngine,
    Session,
    inspector,
    matmul,
    matmul_many,
)
from repro.api.policy import resolve_policy
from repro.core.parallel import shard_by_weight


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(7).random((900, 2))


@pytest.fixture(scope="module")
def H(points):
    H = inspector(points, kernel="gaussian", structure="h2-geometric",
                  leaf_size=32)
    assert H.evaluator.decision.batch  # buckets exist; batched path active
    return H


@pytest.fixture(scope="module")
def W(H):
    return np.random.default_rng(8).random((H.dim, 24))


@pytest.fixture(scope="module")
def y_batched(H, W):
    return H.matmul(W, order="batched")


@pytest.fixture(scope="module")
def engine(H):
    """One persistent 2-worker pool shared by the equivalence tests."""
    with ProcessEngine(H, num_workers=2) as eng:
        yield eng


class TestEquivalence:
    def test_bit_identical_to_serial_batched(self, engine, W, y_batched):
        np.testing.assert_array_equal(engine.matmul(W), y_batched)

    def test_matches_serial_and_threaded(self, engine, H, W):
        y_proc = engine.matmul(W)
        y_serial = H.matmul(W, order="original")
        with Executor(num_threads=2) as ex:
            y_thread = ex.matmul(H, W, order="original")
        scale = np.linalg.norm(y_serial)
        assert np.linalg.norm(y_proc - y_serial) / scale < 1e-12
        assert np.linalg.norm(y_proc - y_thread) / scale < 1e-12

    def test_vector_rhs(self, engine, H, W):
        y = engine.matmul(W[:, 0])
        assert y.ndim == 1
        # Compare at the same GEMM shape (q=1): BLAS picks different
        # kernels per shape, so bit-identity holds per identical call.
        np.testing.assert_array_equal(
            y, H.matmul(W[:, 0], order="batched"))

    def test_q_chunk_streaming_is_bit_identical(self, H, W):
        with ProcessEngine(H, num_workers=2, q_chunk=7) as eng:
            y = eng.matmul(W)
            assert eng.chunks == -(-W.shape[1] // 7)
        np.testing.assert_array_equal(
            y, H.matmul(W, order="batched", q_chunk=7))

    def test_wrong_row_count_rejected(self, engine, W):
        with pytest.raises(ValueError, match="rows"):
            engine.matmul(W[:-1])

    def test_batch_rejected_structure_matches_to_tolerance(self, points):
        # HSS declines batch lowering: serial order="batched" falls back
        # to per-block code, while the engine always runs the batched
        # tables — agreement is <1e-12 here, bitwise only when the cost
        # model accepted batching.
        H = inspector(points, kernel="gaussian", structure="hss",
                      leaf_size=32)
        assert not H.evaluator.decision.batch
        W = np.random.default_rng(9).random((H.dim, 6))
        ref = H.matmul(W, order="original")
        with ProcessEngine(H, num_workers=2) as eng:
            y = eng.matmul(W)
        assert np.linalg.norm(y - ref) / np.linalg.norm(ref) < 1e-12

    def test_order_original_wins_over_process_backend(self, H, W):
        # order="original" names the per-block code explicitly; it runs
        # in-process (no pool is built for it).
        pol = ExecutionPolicy(backend="process", num_workers=2)
        with Executor(policy=pol) as ex:
            y = ex.matmul(H, W, order="original")
            assert not ex._engines  # no engine was spun up
        np.testing.assert_array_equal(y, H.matmul(W, order="original"))


class TestWorkerCountEdgeCases:
    @pytest.mark.parametrize("workers", [0, 1, 16])
    def test_worker_counts(self, H, W, y_batched, workers):
        # 0 = inline (sharded code path, no pool); 1 = degenerate pool;
        # 16 far exceeds the shard-unit supply at N=900 (idle workers).
        with ProcessEngine(H, num_workers=workers) as eng:
            np.testing.assert_array_equal(eng.matmul(W), y_batched)
            assert len(eng.worker_pids()) == workers

    def test_inline_mode_uses_no_shared_memory(self, H, W):
        with ProcessEngine(H, num_workers=0) as eng:
            eng.matmul(W)
            assert eng.segment_names() == []

    def test_negative_workers_rejected_by_policy(self):
        with pytest.raises(ValueError, match="num_workers"):
            ExecutionPolicy(backend="process", num_workers=-1)


class TestPolicy:
    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ExecutionPolicy(backend="mpi")

    def test_default_backend_is_thread(self):
        assert ExecutionPolicy().backend == "thread"
        assert ExecutionPolicy().num_workers is None

    def test_resolution_precedence(self):
        pol = ExecutionPolicy(backend="process", num_workers=2)
        merged = resolve_policy(pol, num_workers=5)
        assert merged.backend == "process" and merged.num_workers == 5
        assert resolve_policy(None, backend="process").backend == "process"

    def test_free_functions_route_process_backend(self, H, W, y_batched):
        pol = ExecutionPolicy(backend="process", num_workers=1)
        np.testing.assert_array_equal(matmul(H, W, policy=pol), y_batched)
        np.testing.assert_array_equal(matmul_many(H, W, policy=pol),
                                      y_batched)

    def test_hmatrix_matmul_routes_process_backend(self, H, W, y_batched):
        pol = ExecutionPolicy(backend="process", num_workers=1)
        np.testing.assert_array_equal(H.matmul(W, policy=pol), y_batched)


class TestPoolReuse:
    def test_executor_reuses_engine_across_matmul_many(self, H, W,
                                                       y_batched):
        pol = ExecutionPolicy(backend="process", num_workers=2)
        with Executor(policy=pol) as ex:
            ex.matmul(H, W)
            engine = ex.engine_for(H)
            pids = engine.worker_pids()
            calls = engine.calls
            # Panel-stream form of matmul_many: one list in, list out.
            outs = ex.matmul_many(H, [W[:, :8], W[:, 8:]])
            assert engine.worker_pids() == pids       # same processes
            assert ex.engine_for(H) is engine         # same pool object
            assert engine.calls > calls
            np.testing.assert_array_equal(outs[0], y_batched[:, :8])
            np.testing.assert_array_equal(outs[1], y_batched[:, 8:])
        assert engine.closed

    def test_engine_cache_is_bounded(self, points, W):
        # Engines pin workers + shared memory, so the executor keeps an
        # LRU of at most _max_engines and closes evictees — a serving
        # Session over many datasets stays bounded. The HMatrices are
        # kept alive here: an engine whose HMatrix dies is evicted
        # immediately by its weakref finalizer (separate test), which
        # would otherwise empty the cache below the LRU bound.
        pol = ExecutionPolicy(backend="process", num_workers=0)
        with Executor(policy=pol) as ex:
            ex._max_engines = 2
            rng = np.random.default_rng(11)
            engines, hmats = [], []
            for _ in range(3):
                H = inspector(rng.random((300, 2)), kernel="gaussian",
                              structure="h2-geometric", leaf_size=32)
                hmats.append(H)
                ex.matmul(H, rng.random((300, 4)))
                engines.append(ex.engine_for(H))
            assert len(ex._engines) == 2
            assert engines[0].closed          # LRU victim
            assert not engines[1].closed and not engines[2].closed

    def test_session_owns_pool_lifecycle(self, points, W):
        pol = ExecutionPolicy(backend="process", num_workers=1)
        with Session(policy=pol) as session:
            H = session.inspect(points)
            y = session.matmul(H, W)
            engine = session._executor.engine_for(H)
            assert not engine.closed
            np.testing.assert_array_equal(y, H.matmul(W, order="batched"))
        assert engine.closed
        assert not any(
            os.path.exists(f"/dev/shm/{name}")
            for name in engine.segment_names()
        )


class TestTeardown:
    def test_close_unlinks_all_segments(self, H, W):
        eng = ProcessEngine(H, num_workers=2)
        names = eng.segment_names()
        assert names  # CDS bufs + W/Y/T/S scratch
        eng.matmul(W)
        eng.close()
        if os.path.isdir("/dev/shm"):
            leaked = [n for n in names if os.path.exists(f"/dev/shm/{n}")]
            assert leaked == []
        assert eng.closed
        eng.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            eng.matmul(W)

    def test_no_resource_tracker_leak_warnings(self, tmp_path):
        """End-of-process check: a clean run must not trip the
        multiprocessing resource tracker ("leaked shared_memory")."""
        script = tmp_path / "leakcheck.py"
        script.write_text(
            "import numpy as np\n"
            "from repro import ProcessEngine, inspector\n"
            "pts = np.random.default_rng(0).random((600, 2))\n"
            "H = inspector(pts, kernel='gaussian',\n"
            "              structure='h2-geometric', leaf_size=32)\n"
            "W = np.random.default_rng(1).random((600, 8))\n"
            "with ProcessEngine(H, num_workers=2) as eng:\n"
            "    eng.matmul(W)\n"
            "print('done')\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, str(script)], capture_output=True, text=True,
            env=env, timeout=180,
        )
        assert proc.returncode == 0, proc.stderr
        assert "done" in proc.stdout
        assert "leaked" not in proc.stderr
        assert "resource_tracker" not in proc.stderr

    def test_worker_death_raises_instead_of_hanging(self, H, W):
        eng = ProcessEngine(H, num_workers=1)
        try:
            eng._workers[0].terminate()
            eng._workers[0].join(timeout=5)
            with pytest.raises(RuntimeError, match="worker"):
                eng.matmul(W)
            assert eng.closed  # failure path tears the pool down
        finally:
            eng.close()


class TestSharding:
    def test_lpt_is_deterministic_and_covers_all(self):
        weights = [5.0, 1.0, 3.0, 3.0, 2.0, 8.0]
        a = shard_by_weight(weights, 3)
        b = shard_by_weight(weights, 3)
        assert a == b
        assert sorted(i for s in a for i in s) == list(range(len(weights)))

    def test_more_shards_than_items(self):
        shards = shard_by_weight([1.0, 2.0], 5)
        assert len(shards) == 5
        assert sorted(i for s in shards for i in s) == [0, 1]
        assert sum(1 for s in shards if s) == 2

    def test_load_balance(self):
        weights = [1.0] * 64
        loads = [len(s) for s in shard_by_weight(weights, 4)]
        assert max(loads) - min(loads) <= 1


class TestCLI:
    def test_evaluate_backend_process(self, tmp_path, capsys):
        from repro.cli import main

        pts = tmp_path / "pts.npy"
        np.save(pts, np.random.default_rng(3).random((400, 2)))
        h = tmp_path / "h.npz"
        assert main(["inspect", str(pts), "-o", str(h),
                     "--leaf-size", "32"]) == 0
        capsys.readouterr()
        y_p = tmp_path / "yp.npy"
        y_s = tmp_path / "ys.npy"
        assert main(["evaluate", str(h), "-q", "4", "--backend", "process",
                     "--workers", "2", "-o", str(y_p)]) == 0
        assert "backend=process, workers=2" in capsys.readouterr().out
        assert main(["evaluate", str(h), "-q", "4", "-o", str(y_s)]) == 0
        np.testing.assert_array_equal(np.load(y_p), np.load(y_s))

    def test_evaluate_rejects_bad_backend(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["evaluate", "whatever.npz", "--backend", "mpi"])
