"""Unit tests for the CDS and tree-based storage formats."""

import numpy as np
import pytest

from repro.analysis import build_blockset, build_coarsenset
from repro.compression import compress
from repro.storage import build_cds, build_treebased


@pytest.fixture(scope="module")
def packed(points_2d, gaussian_kernel):
    res = compress(points_2d, gaussian_kernel, structure="h2-geometric",
                   tau=0.65, bacc=1e-5, leaf_size=32, seed=0)
    cs = build_coarsenset(res.tree, res.sranks, p=4, agg=2)
    nb = build_blockset(res.htree, 2, kind="near")
    fb = build_blockset(res.htree, 4, kind="far")
    cds = build_cds(res.factors, cs, nb, fb)
    return res, cds


class TestCDS:
    def test_basis_roundtrip(self, packed):
        res, cds = packed
        tree = res.tree
        for v in cds.basis_offset:
            expect = (res.factors.leaf_basis[v] if tree.is_leaf(v)
                      else res.factors.transfer[v])
            np.testing.assert_array_equal(cds.basis(v), expect)

    def test_near_roundtrip(self, packed):
        res, cds = packed
        for pair, D in res.factors.near_blocks.items():
            np.testing.assert_array_equal(cds.near(*pair), D)

    def test_far_roundtrip(self, packed):
        res, cds = packed
        for pair, B in res.factors.coupling.items():
            np.testing.assert_array_equal(cds.far(*pair), B)

    def test_accessors_return_views_not_copies(self, packed):
        _res, cds = packed
        v = next(iter(cds.basis_offset))
        view = cds.basis(v)
        assert view.base is cds.basis_buf

    def test_visit_order_matches_buffer_order(self, packed):
        """CDS property: walking the coarsenset touches the basis buffer in
        monotonically increasing offsets (no jumping back)."""
        _res, cds = packed
        offsets = [cds.basis_offset[v] for v in cds.basis_visit_order()]
        assert offsets == sorted(offsets)

    def test_near_visit_order_contiguous(self, packed):
        _res, cds = packed
        offsets = [cds.near_offset[p] for p in cds.near_visit_order()]
        assert offsets == sorted(offsets)

    def test_far_visit_order_contiguous(self, packed):
        _res, cds = packed
        offsets = [cds.far_offset[p] for p in cds.far_visit_order()]
        assert offsets == sorted(offsets)

    def test_buffers_fully_packed_no_gaps(self, packed):
        res, cds = packed
        used = sum(
            np.prod(cds.basis_shape[v]) for v in cds.basis_offset
        )
        assert used == len(cds.basis_buf)
        near_used = sum(D.size for D in res.factors.near_blocks.values())
        assert near_used == len(cds.near_buf)
        far_used = sum(B.size for B in res.factors.coupling.values())
        assert far_used == len(cds.far_buf)

    def test_total_bytes_matches_factor_bytes(self, packed):
        res, cds = packed
        assert cds.total_bytes() == res.factors.memory_bytes()

    def test_every_basis_node_present(self, packed):
        res, cds = packed
        for v in range(res.tree.num_nodes):
            if res.factors.srank(v) > 0:
                assert v in cds.basis_offset


class TestTreeBased:
    def test_roundtrip(self, packed):
        res, _ = packed
        tb = build_treebased(res.factors)
        for v, arr in tb.basis.items():
            expect = (res.factors.leaf_basis[v] if res.tree.is_leaf(v)
                      else res.factors.transfer[v])
            np.testing.assert_array_equal(arr, expect)

    def test_separate_allocations(self, packed):
        res, _ = packed
        tb = build_treebased(res.factors)
        arrays = list(tb.basis.values())
        assert arrays[0].base is None  # owns its memory

    def test_allocation_order_is_construction_order(self, packed):
        """TB allocates basis in BFS node order, then near, then far —
        the compression order, NOT the evaluation visit order."""
        res, _ = packed
        tb = build_treebased(res.factors)
        kinds = [k for k, _ in tb.allocation_order]
        assert kinds == sorted(kinds, key=["basis", "far", "near"].index) or (
            kinds.index("near") < kinds.index("far")
            if "near" in kinds and "far" in kinds else True
        )
        basis_ids = [key for k, key in tb.allocation_order if k == "basis"]
        assert basis_ids == sorted(basis_ids)

    def test_same_bytes_as_cds(self, packed):
        res, cds = packed
        tb = build_treebased(res.factors)
        assert tb.total_bytes() == cds.total_bytes()
