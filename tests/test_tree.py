"""Unit and property tests for cluster-tree construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tree import build_cluster_tree, kdtree_split, twomeans_split


class TestSplitRules:
    def test_kdtree_split_balanced(self, rng):
        pts = rng.random((101, 3))
        idx = np.arange(101)
        left, right = kdtree_split(pts, idx)
        assert len(left) == 51 and len(right) == 50
        assert sorted(np.concatenate([left, right])) == list(range(101))

    def test_kdtree_splits_widest_axis(self):
        pts = np.zeros((10, 2))
        pts[:, 1] = np.arange(10)  # all spread on axis 1
        left, right = kdtree_split(pts, np.arange(10))
        assert pts[left, 1].max() < pts[right, 1].min()

    def test_twomeans_split_balanced(self, rng):
        pts = rng.normal(size=(80, 10))
        left, right = twomeans_split(pts, np.arange(80), rng=0)
        assert len(left) == 40 and len(right) == 40

    def test_twomeans_separates_clusters(self, rng):
        a = rng.normal(size=(40, 5))
        b = rng.normal(size=(40, 5)) + 20.0
        pts = np.vstack([a, b])
        left, right = twomeans_split(pts, np.arange(80), rng=0)
        sides = {tuple(sorted(left.tolist())), tuple(sorted(right.tolist()))}
        assert tuple(range(40)) in sides

    def test_twomeans_handles_duplicate_points(self):
        pts = np.ones((16, 4))
        left, right = twomeans_split(pts, np.arange(16), rng=0)
        assert len(left) + len(right) == 16

    def test_twomeans_rejects_single_point(self):
        with pytest.raises(ValueError):
            twomeans_split(np.ones((1, 2)), np.arange(1), rng=0)


class TestBuildClusterTree:
    def test_basic_invariants_2d(self, points_2d):
        tree = build_cluster_tree(points_2d, leaf_size=32)
        assert tree.num_points == 600
        assert sorted(tree.perm.tolist()) == list(range(600))
        for leaf in tree.leaves:
            assert tree.node_size(leaf) <= 32

    def test_children_partition_parent(self, points_2d):
        tree = build_cluster_tree(points_2d, leaf_size=32)
        for v in range(tree.num_nodes):
            if tree.is_leaf(v):
                continue
            lc, rc = int(tree.lchild[v]), int(tree.rchild[v])
            assert tree.start[lc] == tree.start[v]
            assert tree.stop[lc] == tree.start[rc]
            assert tree.stop[rc] == tree.stop[v]

    def test_levels_consistent(self, points_2d):
        tree = build_cluster_tree(points_2d, leaf_size=32)
        for v in range(1, tree.num_nodes):
            assert tree.level[v] == tree.level[tree.parent[v]] + 1

    def test_bfs_numbering(self, points_2d):
        tree = build_cluster_tree(points_2d, leaf_size=32)
        # BFS order: levels are non-decreasing with node id.
        assert (np.diff(tree.level) >= 0).all()

    def test_auto_method_dispatch(self, points_2d, points_hd):
        # Low-dim should be deterministic (kd-tree), high-dim stochastic ok.
        t1 = build_cluster_tree(points_2d, leaf_size=32, method="auto")
        t2 = build_cluster_tree(points_2d, leaf_size=32, method="kdtree")
        np.testing.assert_array_equal(t1.perm, t2.perm)
        t3 = build_cluster_tree(points_hd, leaf_size=32, method="auto", seed=0)
        assert t3.num_points == len(points_hd)

    def test_leaf_size_one_point_tree(self):
        pts = np.array([[0.5, 0.5]])
        tree = build_cluster_tree(pts, leaf_size=4)
        assert tree.num_nodes == 1
        assert tree.is_leaf(0)
        assert tree.height == 0

    def test_all_leaves_cover_points_once(self, points_2d):
        tree = build_cluster_tree(points_2d, leaf_size=16)
        seen = np.zeros(600, dtype=int)
        for leaf in tree.leaves:
            seen[tree.node_point_indices(leaf)] += 1
        assert (seen == 1).all()

    def test_node_points_match_indices(self, points_2d):
        tree = build_cluster_tree(points_2d, leaf_size=32)
        for v in [0, 1, int(tree.leaves[0])]:
            np.testing.assert_array_equal(
                tree.node_points(v), points_2d[tree.node_point_indices(v)]
            )

    def test_geometry_radii_cover_points(self, points_2d):
        tree = build_cluster_tree(points_2d, leaf_size=32)
        for v in range(tree.num_nodes):
            pts = tree.node_points(v)
            d = np.linalg.norm(pts - tree.centers[v], axis=1)
            assert d.max() <= tree.radii[v] + 1e-12

    def test_postorder_children_before_parents(self, points_2d):
        tree = build_cluster_tree(points_2d, leaf_size=32)
        pos = {v: i for i, v in enumerate(tree.postorder())}
        for v in range(tree.num_nodes):
            if not tree.is_leaf(v):
                assert pos[int(tree.lchild[v])] < pos[v]
                assert pos[int(tree.rchild[v])] < pos[v]

    def test_postorder_covers_all_nodes(self, points_2d):
        tree = build_cluster_tree(points_2d, leaf_size=32)
        assert sorted(tree.postorder()) == list(range(tree.num_nodes))

    def test_invalid_leaf_size(self, points_2d):
        with pytest.raises(ValueError):
            build_cluster_tree(points_2d, leaf_size=0)

    def test_invalid_method(self, points_2d):
        with pytest.raises(ValueError, match="unknown method"):
            build_cluster_tree(points_2d, method="quadtree")

    def test_nan_points_rejected(self):
        pts = np.full((10, 2), np.nan)
        with pytest.raises(ValueError, match="finite"):
            build_cluster_tree(pts)

    @given(
        n=st.integers(2, 200),
        leaf=st.integers(1, 40),
        d=st.integers(1, 3),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_tree_invariants(self, n, leaf, d):
        pts = np.random.default_rng(n * 31 + leaf).random((n, d))
        tree = build_cluster_tree(pts, leaf_size=leaf)
        # Permutation valid; leaves within size bound; sizes sum to N.
        assert sorted(tree.perm.tolist()) == list(range(n))
        leaf_sizes = [tree.node_size(v) for v in tree.leaves]
        assert all(s <= max(leaf, 1) for s in leaf_sizes)
        assert sum(leaf_sizes) == n

    def test_two_means_balanced_depth(self, points_hd):
        tree = build_cluster_tree(points_hd, leaf_size=25, seed=0)
        # Median splits -> depth ceil(log2(N/leaf)): all leaves within 1 level.
        leaf_levels = tree.level[tree.leaves]
        assert leaf_levels.max() - leaf_levels.min() <= 1
