"""Integration tests for skeletonization and modular compression."""

import numpy as np
import pytest

from repro.compression import compress, skeletonize_tree
from repro.core.accuracy import overall_accuracy
from repro.core.evaluation import evaluate_reference
from repro.htree import build_htree
from repro.kernels import GaussianKernel, LaplaceKernel
from repro.sampling import build_sampling_plan
from repro.tree import build_cluster_tree


@pytest.fixture(scope="module")
def pipeline_2d(points_2d):
    tree = build_cluster_tree(points_2d, leaf_size=32)
    htree = build_htree(tree, "h2-geometric", tau=0.65)
    plan = build_sampling_plan(tree, k=16, seed=0)
    return tree, htree, plan


class TestSkeletonization:
    def test_factor_shapes_consistent(self, pipeline_2d, gaussian_kernel):
        _tree, htree, plan = pipeline_2d
        f = skeletonize_tree(htree, gaussian_kernel, plan, bacc=1e-5)
        f.validate()

    def test_sranks_bounded_by_node_size(self, pipeline_2d, gaussian_kernel):
        tree, htree, plan = pipeline_2d
        f = skeletonize_tree(htree, gaussian_kernel, plan, bacc=1e-5)
        for v in range(tree.num_nodes):
            if f.srank(v) and tree.is_leaf(v):
                assert f.srank(v) <= tree.node_size(v)

    def test_max_rank_respected(self, pipeline_2d, gaussian_kernel):
        _tree, htree, plan = pipeline_2d
        f = skeletonize_tree(htree, gaussian_kernel, plan, bacc=1e-12, max_rank=5)
        assert f.sranks.max() <= 5

    def test_skeleton_points_subset_of_candidates(self, pipeline_2d, gaussian_kernel):
        tree, htree, plan = pipeline_2d
        f = skeletonize_tree(htree, gaussian_kernel, plan, bacc=1e-5)
        for v, sk in f.skeleton.items():
            if tree.is_leaf(v):
                own = set(tree.node_point_indices(v).tolist())
                assert set(sk.tolist()) <= own

    def test_nested_skeletons(self, pipeline_2d, gaussian_kernel):
        """Interior skeleton points come from children's skeletons (H2)."""
        tree, htree, plan = pipeline_2d
        f = skeletonize_tree(htree, gaussian_kernel, plan, bacc=1e-5)
        for v, sk in f.skeleton.items():
            if tree.is_leaf(v):
                continue
            lc, rc = int(tree.lchild[v]), int(tree.rchild[v])
            union = set(f.skeleton[lc].tolist()) | set(f.skeleton[rc].tolist())
            assert set(sk.tolist()) <= union

    def test_near_blocks_exact(self, pipeline_2d, gaussian_kernel):
        tree, htree, plan = pipeline_2d
        f = skeletonize_tree(htree, gaussian_kernel, plan, bacc=1e-5)
        (i, j) = next(iter(f.near_blocks))
        expect = gaussian_kernel.block(tree.node_points(i), tree.node_points(j))
        np.testing.assert_allclose(f.near_blocks[(i, j)], expect)

    def test_tighter_bacc_means_higher_rank(self, pipeline_2d, gaussian_kernel):
        _tree, htree, plan = pipeline_2d
        loose = skeletonize_tree(htree, gaussian_kernel, plan, bacc=1e-2)
        tight = skeletonize_tree(htree, gaussian_kernel, plan, bacc=1e-8)
        assert tight.sranks.sum() >= loose.sranks.sum()

    def test_root_has_no_basis(self, pipeline_2d, gaussian_kernel):
        _tree, htree, plan = pipeline_2d
        f = skeletonize_tree(htree, gaussian_kernel, plan, bacc=1e-5)
        assert f.srank(0) == 0

    def test_invalid_bacc(self, pipeline_2d, gaussian_kernel):
        _tree, htree, plan = pipeline_2d
        with pytest.raises(ValueError):
            skeletonize_tree(htree, gaussian_kernel, plan, bacc=0.0)


class TestEvaluationAccuracy:
    @pytest.mark.parametrize("structure,params", [
        ("h2-geometric", {"tau": 0.65}),
        ("hss", {}),
        ("h2-b", {"budget": 0.05}),
    ])
    def test_accuracy_meets_tolerance(self, points_2d, gaussian_kernel,
                                      structure, params):
        res = compress(points_2d, gaussian_kernel, structure=structure,
                       bacc=1e-7, leaf_size=32, seed=0, **params)
        rng = np.random.default_rng(5)
        W = rng.random((len(points_2d), 4))
        Wt = W[res.tree.perm]
        eps = overall_accuracy(res.factors, gaussian_kernel, Wt)
        assert eps < 1e-4, f"{structure}: eps_f={eps}"

    def test_accuracy_improves_with_bacc(self, points_2d, gaussian_kernel):
        errs = []
        for bacc in (1e-2, 1e-4, 1e-7):
            res = compress(points_2d, gaussian_kernel, structure="hss",
                           bacc=bacc, leaf_size=32, seed=0)
            rng = np.random.default_rng(5)
            Wt = rng.random((len(points_2d), 2))[res.tree.perm]
            errs.append(overall_accuracy(res.factors, gaussian_kernel, Wt))
        assert errs[2] < errs[0]

    def test_matvec_matches_matmul_columns(self, points_2d, gaussian_kernel):
        res = compress(points_2d, gaussian_kernel, structure="h2-geometric",
                       bacc=1e-6, leaf_size=32, seed=0)
        rng = np.random.default_rng(6)
        W = rng.random((len(points_2d), 3))
        Y = evaluate_reference(res.factors, W)
        for c in range(3):
            yc = evaluate_reference(res.factors, W[:, c])
            np.testing.assert_allclose(Y[:, c], yc[:, 0], atol=1e-12)

    def test_laplace_kernel_works(self, points_2d):
        k = LaplaceKernel(bandwidth=0.7)
        res = compress(points_2d, k, structure="hss", bacc=1e-7,
                       leaf_size=32, seed=0)
        rng = np.random.default_rng(5)
        Wt = rng.random((len(points_2d), 2))[res.tree.perm]
        assert overall_accuracy(res.factors, k, Wt) < 1e-3

    def test_high_dim_points(self, points_hd):
        k = GaussianKernel(bandwidth=5.0)
        res = compress(points_hd, k, structure="hss", bacc=1e-6,
                       leaf_size=32, seed=0)
        rng = np.random.default_rng(5)
        Wt = rng.random((len(points_hd), 2))[res.tree.perm]
        assert overall_accuracy(res.factors, k, Wt) < 1e-2


class TestModularCompression:
    def test_all_module_timings_recorded(self, points_2d, gaussian_kernel):
        res = compress(points_2d, gaussian_kernel, leaf_size=32, seed=0)
        assert set(res.timings) == {
            "tree_construction", "interaction_computation",
            "sampling", "low_rank_approximation",
        }

    def test_prebuilt_modules_reused(self, points_2d, gaussian_kernel):
        full = compress(points_2d, gaussian_kernel, leaf_size=32, seed=0)
        again = compress(points_2d, gaussian_kernel, leaf_size=32, seed=0,
                         tree=full.tree, htree=full.htree, plan=full.plan)
        assert again.tree is full.tree
        assert again.htree is full.htree
        assert again.plan is full.plan
        np.testing.assert_array_equal(again.sranks, full.sranks)

    def test_kernel_by_name(self, points_2d):
        res = compress(points_2d, "gaussian", leaf_size=32, seed=0)
        assert res.factors.sranks.max() > 0

    def test_compression_ratio_above_one_for_hss(self, rng):
        # Smooth kernel on 1k points: HSS must actually compress.
        pts = rng.random((1000, 2))
        k = GaussianKernel(bandwidth=2.0)
        res = compress(pts, k, structure="hss", bacc=1e-4,
                       leaf_size=64, seed=0)
        assert res.factors.compression_ratio() > 2.0

    def test_flop_count_below_dense(self, points_2d, gaussian_kernel):
        res = compress(points_2d, gaussian_kernel, structure="hss",
                       bacc=1e-4, leaf_size=32, seed=0)
        q = 16
        dense = 2 * len(points_2d) ** 2 * q
        assert res.factors.evaluation_flops(q) < dense
