"""Deliberately-bad fixture: fires R004 exactly once.

The filename contains ``manifest`` so the file is on an R004-scoped
path; ``time.time()`` makes the document depend on when it was built.
"""
import time


def build_manifest(stats):
    return {"stats": stats, "created": time.time()}
