"""Deliberately-bad fixture: fires R002 exactly once.

One write to a ``# guarded-by:`` attribute outside its lock. The
``__init__`` assignment and the locked increment must NOT fire.
"""
import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # guarded-by: self._lock

    def locked_increment(self):
        with self._lock:
            self._count += 1

    def racy_increment(self):
        self._count += 1
