"""Deliberately-bad fixture: fires R003 exactly once.

The filename contains ``store`` so the file is on an R003-scoped path;
the handler swallows PlanStoreError, violating the fail-closed
contract.
"""


class PlanStoreError(Exception):
    pass


def load_quietly(path):
    try:
        return path.read_bytes()
    except PlanStoreError:
        pass
    return None
