"""Deliberately-bad fixture: fires R001 exactly once.

A policy resolved by truthiness — the bug class coalesce_policy exists
to prevent. Excluded from ruff (see ruff.toml): this file exists to be
wrong.
"""


def resolve(policy, fallback):
    return policy or fallback
