"""Unit tests for the Table 1 dataset registry and generators."""

import numpy as np
import pytest

from repro.datasets import (
    DATASETS,
    dataset_names,
    dino_points,
    grid_points,
    load_dataset,
    random_points,
    sunflower_points,
    table1_rows,
    unit_sphere_points,
    clustered_gaussian_points,
    manifold_points,
)

# The paper's Table 1, transcribed.
TABLE1 = {
    "covtype": (100_000, 54), "higgs": (100_000, 28), "mnist": (60_000, 780),
    "susy": (100_000, 18), "letter": (20_000, 16), "pen": (11_000, 16),
    "hepmass": (100_000, 28), "gas": (14_000, 129), "grid": (102_000, 2),
    "random": (66_000, 2), "dino": (80_000, 3), "sunflower": (80_000, 2),
    "unit": (32_000, 2),
}


class TestRegistry:
    def test_all_thirteen_datasets_present(self):
        assert len(DATASETS) == 13
        assert set(DATASETS) == set(TABLE1)

    @pytest.mark.parametrize("name", sorted(TABLE1))
    def test_paper_n_and_d(self, name):
        n, d = TABLE1[name]
        spec = DATASETS[name]
        assert spec.paper_n == n
        assert spec.dim == d

    @pytest.mark.parametrize("name", sorted(TABLE1))
    def test_generated_shape(self, name):
        pts = load_dataset(name, n=500, seed=0)
        assert pts.shape == (500, TABLE1[name][1])
        assert np.isfinite(pts).all()

    def test_problem_ids_ordered(self):
        rows = table1_rows()
        assert [r["id"] for r in rows] == list(range(1, 14))

    def test_kind_split(self):
        assert dataset_names("ml") == [
            "covtype", "higgs", "mnist", "susy", "letter", "pen",
            "hepmass", "gas",
        ]
        assert dataset_names("scientific") == [
            "grid", "random", "dino", "sunflower", "unit",
        ]

    def test_deterministic_given_seed(self):
        a = load_dataset("susy", n=200, seed=3)
        b = load_dataset("susy", n=200, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_output(self):
        a = load_dataset("susy", n=200, seed=3)
        b = load_dataset("susy", n=200, seed=4)
        assert not np.array_equal(a, b)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_dataset("not-a-dataset")


class TestGeometricGenerators:
    def test_grid_is_regular(self):
        pts = grid_points(100, 2)
        assert pts.shape == (100, 2)
        # Lattice: first coordinate takes few distinct values.
        assert len(np.unique(pts[:, 0])) <= 10 + 1

    def test_grid_in_unit_cube(self):
        pts = grid_points(321, 3)
        assert (pts >= 0).all() and (pts <= 1).all()

    def test_grid_rejects_high_dim(self):
        with pytest.raises(ValueError):
            grid_points(100, 4)

    def test_random_in_unit_cube(self):
        pts = random_points(500, 2, seed=0)
        assert (pts >= 0).all() and (pts < 1).all()

    def test_dino_is_3d_curve(self):
        pts = dino_points(400, seed=0)
        assert pts.shape == (400, 3)
        # A thickened 1-D curve: points stay near the trefoil radius range.
        r = np.linalg.norm(pts[:, :2], axis=1)
        assert r.max() < 3.5

    def test_sunflower_radius_bounded(self):
        pts = sunflower_points(300)
        r = np.linalg.norm(pts, axis=1)
        assert r.max() <= 1.0 + 1e-9
        # Quasi-uniform: no two consecutive points coincide.
        assert np.min(np.linalg.norm(np.diff(pts, axis=0), axis=1)) > 0

    def test_unit_sphere_points_on_sphere(self):
        pts = unit_sphere_points(200, d=3, seed=1)
        np.testing.assert_allclose(np.linalg.norm(pts, axis=1), 1.0, atol=1e-12)


class TestSyntheticGenerators:
    def test_clustered_shape_and_finite(self):
        pts = clustered_gaussian_points(300, 20, n_clusters=4, seed=0)
        assert pts.shape == (300, 20)
        assert np.isfinite(pts).all()

    def test_clustered_has_cluster_structure(self):
        # Between-cluster spread should dominate within-cluster spread.
        pts = clustered_gaussian_points(600, 10, n_clusters=3,
                                        intrinsic_dim=3, spread=0.05, seed=1)
        total_var = pts.var(axis=0).sum()
        assert total_var > 0.01  # centers spread out, not collapsed

    def test_manifold_bounded_and_curved(self):
        pts = manifold_points(500, 50, intrinsic_dim=2, seed=0)
        assert pts.shape == (500, 50)
        # Sinusoidal features stay in [-1-eps, 1+eps].
        assert np.abs(pts).max() < 1.2
        # A 2-D sheet (even curved) has decaying spectrum in the tail.
        s = np.linalg.svd(pts - pts.mean(0), compute_uv=False)
        assert s[-1] < 0.5 * s[0]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            clustered_gaussian_points(0, 5)
        with pytest.raises(ValueError):
            manifold_points(10, 5, intrinsic_dim=9)
