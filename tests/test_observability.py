"""Observability layer: RunManifest determinism, schema validation,
stats export, best-effort writes, and PlanStore garbage collection.

The manifest properties are hypothesis-tested because the determinism
contract ("identical inputs -> byte-identical JSON, content-addressed
run_id") must hold for *every* stats/decisions shape, not just the ones
the serving path happens to produce today.
"""

import json
import os
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PlanConfig, PlanStore, Session
from repro.api.store import STORE_VERSION
from repro.cli import main as cli_main
from repro.observability import (
    MANIFEST_VERSION,
    RunManifest,
    SchemaError,
    build_run_manifest,
    collect_stats,
    load_manifest_schema,
    manifest_write_failures,
    metrics_text,
    store_inventory,
    validate_json,
    validate_run_manifest,
    write_run_manifest,
)

PLAN = PlanConfig(leaf_size=32, bacc=1e-6, p=4, seed=0)

# ---------------------------------------------------------------------------
# Strategies: stats/decisions shaped like what the collectors produce (the
# schema constrains the envelope, not every counter name).
# ---------------------------------------------------------------------------

_counter_values = st.one_of(
    st.integers(0, 10**9),
    st.floats(0, 1e9, allow_nan=False, allow_infinity=False),
)
_counter_dicts = st.dictionaries(
    st.text(alphabet="abcdefghij_", min_size=1, max_size=10),
    _counter_values, max_size=4)

_stats_docs = st.fixed_dictionaries({}, optional={
    "store": _counter_dicts,
    "session": _counter_dicts,
    "service": _counter_dicts,
    "engines": _counter_dicts,
    "autotune": _counter_dicts,
    "manifest_write_failures": st.integers(0, 9),
})

_decision_docs = st.lists(st.fixed_dictionaries({
    "policy": _counter_dicts,
    "source": st.sampled_from(["measured", "prior"]),
    "margin": st.floats(0, 100, allow_nan=False, allow_infinity=False),
    "width_bucket": st.sampled_from([1, 16, 256]),
    "trials": st.integers(0, 5),
    "hmatrix_fp": st.text(alphabet="0123456789abcdef",
                          min_size=4, max_size=16),
}), max_size=3)

FAST = settings(max_examples=25, deadline=None)


def _shuffled(obj):
    """Deep copy with every dict's insertion order reversed — equal value,
    different construction order."""
    if isinstance(obj, dict):
        return {k: _shuffled(obj[k]) for k in reversed(list(obj))}
    if isinstance(obj, list):
        return [_shuffled(v) for v in obj]
    return obj


class TestRunManifestProperties:
    @given(stats=_stats_docs, decisions=_decision_docs)
    @FAST
    def test_roundtrip_and_schema(self, stats, decisions):
        m = RunManifest.build(stats=stats, decisions=decisions)
        clone = RunManifest.from_json(m.to_json())
        assert clone.doc == m.doc
        assert clone.run_id == m.run_id
        m.validate()  # built manifests always conform to the schema

    @given(stats=_stats_docs, decisions=_decision_docs,
           created=st.none() | st.floats(0, 2e9, allow_nan=False))
    @FAST
    def test_identical_inputs_byte_identical_json(self, stats, decisions,
                                                  created):
        a = RunManifest.build(stats=stats, decisions=decisions,
                              created=created)
        b = RunManifest.build(stats=_shuffled(stats),
                              decisions=_shuffled(decisions),
                              created=created)
        assert a.to_json() == b.to_json()  # bytes, not just equality
        assert a.run_id == b.run_id

    @given(stats=_stats_docs)
    @FAST
    def test_run_id_is_a_content_address(self, stats):
        base = RunManifest.build(stats=stats)
        moved = RunManifest.build(stats=stats, created=123.0)
        assert base.run_id != moved.run_id

    @given(stats=_stats_docs)
    @FAST
    def test_serialization_is_key_sorted(self, stats):
        doc = json.loads(RunManifest.build(stats=stats).to_json())
        text = RunManifest.build(stats=stats).to_json()
        assert text.endswith("\n")
        assert list(doc) == sorted(doc)

    def test_from_json_rejects_non_object(self):
        with pytest.raises(ValueError, match="object"):
            RunManifest.from_json("[1, 2]")


class TestSchemaValidator:
    def test_checked_in_schema_loads(self):
        schema = load_manifest_schema()
        assert schema["properties"]["manifest_version"]["enum"] == [
            MANIFEST_VERSION]

    def test_missing_required_rejected(self):
        doc = RunManifest.build(stats={}).doc.copy()
        del doc["versions"]
        problems = validate_run_manifest(doc)
        assert any("versions" in p for p in problems)

    def test_wrong_type_rejected(self):
        doc = json.loads(RunManifest.build(stats={}).to_json())
        doc["stats"] = "not an object"
        assert validate_run_manifest(doc)

    def test_bad_run_id_pattern_rejected(self):
        doc = json.loads(RunManifest.build(stats={}).to_json())
        doc["run_id"] = "NOT-HEX"
        assert any("pattern" in p or "run_id" in p
                   for p in validate_run_manifest(doc))

    def test_unknown_top_level_key_rejected(self):
        doc = json.loads(RunManifest.build(stats={}).to_json())
        doc["surprise"] = 1
        assert validate_run_manifest(doc)

    def test_enum_violation_rejected(self):
        doc = json.loads(RunManifest.build(stats={}, decisions=[{
            "policy": {}, "source": "measured", "margin": 1.0,
            "width_bucket": 16}]).to_json())
        doc["decisions"][0]["source"] = "guessed"
        assert validate_run_manifest(doc)

    def test_bool_is_not_an_integer(self):
        # JSON Schema distinguishes true from 1; the validator must too.
        assert validate_json(True, {"type": "integer"})
        assert not validate_json(1, {"type": "integer"})

    def test_unsupported_keyword_raises_not_ignores(self):
        # Silently ignoring an unknown constraint would validate
        # documents the schema author meant to reject.
        with pytest.raises(SchemaError, match="oneOf"):
            validate_json({}, {"oneOf": [{"type": "object"}]})

    def test_validate_raises_with_problem_list(self):
        doc = RunManifest.build(stats={}).doc.copy()
        doc["manifest_version"] = 999
        with pytest.raises(ValueError, match="schema"):
            RunManifest({**doc}).validate()


class TestManifestWrite:
    def test_directory_target_names_by_run_id(self, tmp_path):
        m = RunManifest.build(stats={})
        path = write_run_manifest(m, tmp_path)
        assert path == tmp_path / f"run-{m.run_id}.json"
        assert RunManifest.from_json(path.read_text()).doc == m.doc
        assert not list(tmp_path.glob("*.tmp"))  # atomic: no debris

    def test_json_target_is_exact_file(self, tmp_path):
        m = RunManifest.build(stats={})
        target = tmp_path / "out.json"
        assert write_run_manifest(m, target) == target

    def test_failed_write_counts_not_raises(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        before = manifest_write_failures()
        # Parent "directory" is a regular file: mkdir/replace must fail.
        assert write_run_manifest(RunManifest.build(stats={}),
                                  blocker / "sub") is None
        assert manifest_write_failures() == before + 1

    def test_session_close_writes_validating_manifest(self, tmp_path,
                                                      points_2d,
                                                      gaussian_kernel):
        d = tmp_path / "store"
        with Session(plan=PLAN, store=PlanStore(d), manifest=True) as s:
            H = s.inspect(points_2d, kernel=gaussian_kernel)
            s.matmul(H, np.ones(len(points_2d)))
        files = list((d / "manifests").glob("run-*.json"))
        assert len(files) == 1
        m = RunManifest.from_json(files[0].read_text())
        m.validate()
        assert m.doc["stats"]["session"]["p1_builds"] == 1
        assert m.doc["stats"]["session"]["evaluations"] == 1
        assert m.doc["versions"]["store"] == STORE_VERSION

    def test_manifest_true_needs_disk_store(self):
        with pytest.raises(ValueError, match="disk-backed"):
            Session(manifest=True)

    def test_close_idempotent_single_manifest(self, tmp_path, points_2d,
                                              gaussian_kernel):
        d = tmp_path / "store"
        s = Session(plan=PLAN, store=PlanStore(d), manifest=True)
        s.inspect(points_2d, kernel=gaussian_kernel)
        s.close()
        s.close()
        assert len(list((d / "manifests").glob("run-*.json"))) == 1


class TestStatsExport:
    def test_collect_stats_nests_every_layer(self, points_2d,
                                             gaussian_kernel):
        with Session(plan=PLAN) as s:
            H = s.inspect(points_2d, kernel=gaussian_kernel)
            s.matmul(H, np.ones(len(points_2d)))
            stats = collect_stats(session=s)
        assert stats["session"]["evaluations"] == 1
        assert stats["store"]["misses"] >= 1
        assert "engines" in stats and "autotune" in stats
        assert stats["manifest_write_failures"] >= 0

    def test_metrics_text_flat_sorted_numeric(self):
        text = metrics_text({"a": {"b": 2, "c": 1.5}, "flag": True,
                             "name": "skipped", "z": 0})
        lines = text.splitlines()
        assert lines == sorted(lines)
        assert "repro_a_b 2" in lines
        assert "repro_a_c 1.5" in lines
        assert "repro_flag 1" in lines  # bools as 0/1
        assert "repro_z 0" in lines
        assert not any("skipped" in line for line in lines)

    def test_metrics_text_sanitizes_keys(self):
        assert metrics_text({"p99 ms": 1}) == "repro_p99_ms 1\n"

    def test_store_inventory_tolerates_rot(self, tmp_path, points_2d,
                                           gaussian_kernel):
        d = tmp_path / "store"
        with Session(plan=PLAN, store=PlanStore(d)) as s:
            s.inspect(points_2d, kernel=gaussian_kernel)
        (d / "garbage.json").write_text("{not json")
        inv = store_inventory(d)
        assert inv["entries"] == 2  # p1 + hmatrix
        assert inv["unreadable"] == 1
        assert inv["bytes"] > 0
        assert set(inv["tiers"]) == {"p1", "hmatrix"}


class TestPlanStoreGC:
    def _compiled(self, tmp_path, points, kernel):
        d = tmp_path / "store"
        with Session(plan=PLAN, store=PlanStore(d), manifest=True) as s:
            s.inspect(points, kernel=kernel)
        return d

    def test_fresh_store_fully_kept(self, tmp_path, points_2d,
                                    gaussian_kernel):
        d = self._compiled(tmp_path, points_2d, gaussian_kernel)
        report = PlanStore(d).gc(max_age=3600)
        assert report["removed"] == 0
        assert report["kept"] == 2
        assert report["reclaimed_bytes"] == 0

    def test_aged_store_reclaims_bytes(self, tmp_path, points_2d,
                                       gaussian_kernel):
        d = self._compiled(tmp_path, points_2d, gaussian_kernel)
        store = PlanStore(d)
        report = store.gc(max_age=10, now=time.time() + 60)
        assert report["removed"] == 2
        assert report["run_manifests_removed"] == 1
        assert report["reclaimed_bytes"] > 0
        assert store.cache_info()["disk_entries"] == 0
        assert store.stats.gc_runs == 1
        assert store.stats.gc_reclaimed_bytes == report["reclaimed_bytes"]

    def test_dry_run_removes_nothing(self, tmp_path, points_2d,
                                     gaussian_kernel):
        d = self._compiled(tmp_path, points_2d, gaussian_kernel)
        store = PlanStore(d)
        report = store.gc(max_age=10, now=time.time() + 60, dry_run=True)
        assert report["removed"] == 2
        assert report["reclaimed_bytes"] > 0
        assert store.cache_info()["disk_entries"] == 2  # untouched
        assert store.stats.gc_runs == 0

    def test_version_skew_evicted_by_default(self, tmp_path, points_2d,
                                             gaussian_kernel):
        d = self._compiled(tmp_path, points_2d, gaussian_kernel)
        for manifest_path in d.glob("*.json"):
            doc = json.loads(manifest_path.read_text())
            doc["store_version"] = STORE_VERSION + 1
            manifest_path.write_text(json.dumps(doc))
        report = PlanStore(d).gc()
        assert report["removed"] == 2

    def test_keep_other_versions_preserves_them(self, tmp_path, points_2d,
                                                gaussian_kernel):
        d = self._compiled(tmp_path, points_2d, gaussian_kernel)
        for manifest_path in d.glob("*.json"):
            doc = json.loads(manifest_path.read_text())
            doc["store_version"] = STORE_VERSION + 1
            manifest_path.write_text(json.dumps(doc))
        report = PlanStore(d).gc(keep_other_versions=True)
        assert report["removed"] == 0
        assert report["kept"] == 2

    def test_unreadable_manifest_always_collected(self, tmp_path):
        d = tmp_path / "store"
        d.mkdir()
        (d / "deadbeef.json").write_text("{not json")
        report = PlanStore(d).gc()
        assert report["removed"] == 1
        assert not (d / "deadbeef.json").exists()

    def test_orphan_payload_collected_after_grace(self, tmp_path):
        d = tmp_path / "store"
        d.mkdir()
        fresh = d / "aaaa.npz"
        stale = d / "bbbb.npz"
        fresh.write_bytes(b"x" * 10)
        stale.write_bytes(b"y" * 10)
        old = time.time() - 7200
        os.utime(stale, (old, old))
        report = PlanStore(d).gc()
        assert fresh.exists()  # writer grace: manifest may land next
        assert not stale.exists()
        assert report["reclaimed_bytes"] == 10

    def test_negative_max_age_rejected(self, tmp_path):
        (tmp_path / "s").mkdir()
        with pytest.raises(ValueError, match="max_age"):
            PlanStore(tmp_path / "s").gc(max_age=-1)

    def test_memory_only_store_is_noop(self):
        report = PlanStore().gc(max_age=0)
        assert report == {"scanned": 0, "removed": 0, "kept": 0,
                          "reclaimed_bytes": 0, "run_manifests_removed": 0}


class TestCLIObservability:
    def _compiled(self, tmp_path, points_2d, gaussian_kernel):
        d = tmp_path / "store"
        with Session(plan=PLAN, store=PlanStore(d)) as s:
            s.inspect(points_2d, kernel=gaussian_kernel)
        return d

    def test_stats_metrics_output(self, tmp_path, points_2d,
                                  gaussian_kernel, capsys):
        d = self._compiled(tmp_path, points_2d, gaussian_kernel)
        assert cli_main(["stats", "--store", str(d)]) == 0
        out = capsys.readouterr().out
        assert "repro_store_entries 2" in out
        assert "repro_store_bytes" in out

    def test_stats_json_output(self, tmp_path, points_2d, gaussian_kernel,
                               capsys):
        d = self._compiled(tmp_path, points_2d, gaussian_kernel)
        assert cli_main(["stats", "--store", str(d), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["entries"] == 2 and doc["unreadable"] == 0

    def test_stats_missing_store_errors(self, tmp_path, capsys):
        assert cli_main(["stats", "--store", str(tmp_path / "nope")]) == 2
        assert "no store" in capsys.readouterr().err

    def test_gc_reports_reclaimed_bytes(self, tmp_path, points_2d,
                                        gaussian_kernel, capsys):
        d = self._compiled(tmp_path, points_2d, gaussian_kernel)
        old = time.time() - 7200
        for p in d.glob("*.json"):
            os.utime(p, (old, old))
        assert cli_main(["gc", "--store", str(d), "--max-age", "60"]) == 0
        out = capsys.readouterr().out
        assert "removed 2 artifact(s)" in out
        assert "reclaimed" in out
        assert not list(d.glob("*.json"))

    def test_gc_dry_run_keeps_artifacts(self, tmp_path, points_2d,
                                        gaussian_kernel, capsys):
        d = self._compiled(tmp_path, points_2d, gaussian_kernel)
        assert cli_main(["gc", "--store", str(d), "--max-age", "0",
                         "--dry-run"]) == 0
        assert "would reclaim" in capsys.readouterr().out
        assert len(list(d.glob("*.json"))) == 2
