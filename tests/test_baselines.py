"""Tests for the baseline systems: functional equivalence and the simulated
performance orderings the paper's figures rely on."""

import numpy as np
import pytest

from repro import inspector
from repro.baselines import (
    DenseGEMM,
    GOFMMBaseline,
    MatRoxSystem,
    SMASHBaseline,
    STRUMPACKBaseline,
)
from repro.baselines.matrox import LADDER
from repro.core.evaluation import evaluate_reference
from repro.kernels import GaussianKernel, InverseDistanceKernel
from repro.runtime import HASWELL


@pytest.fixture(scope="module")
def H_h2(points_2d):
    return inspector(points_2d, kernel=GaussianKernel(0.5),
                     structure="h2-geometric", tau=0.65, leaf_size=32,
                     bacc=1e-6, seed=0, p=4)


@pytest.fixture(scope="module")
def H_hss(points_2d):
    return inspector(points_2d, kernel=GaussianKernel(0.5), structure="hss",
                     leaf_size=32, bacc=1e-6, seed=0, p=4)


@pytest.fixture(scope="module")
def machine():
    return HASWELL.scaled_caches(600 / 100_000)


class TestFunctionalEquivalence:
    """All systems compute the same product from the same factors."""

    def test_gofmm_matches_reference(self, H_h2):
        rng = np.random.default_rng(0)
        W = rng.random((H_h2.dim, 3))
        ref = evaluate_reference(H_h2.factors, W)
        out = GOFMMBaseline().evaluate(H_h2.factors, W)
        np.testing.assert_allclose(out, ref, atol=1e-10)

    def test_strumpack_matches_reference_on_hss(self, H_hss):
        rng = np.random.default_rng(1)
        W = rng.random((H_hss.dim, 2))
        ref = evaluate_reference(H_hss.factors, W)
        out = STRUMPACKBaseline().evaluate(H_hss.factors, W)
        np.testing.assert_allclose(out, ref, atol=1e-10)

    def test_strumpack_rejects_non_hss(self, H_h2):
        with pytest.raises(ValueError, match="HSS"):
            STRUMPACKBaseline().evaluate(H_h2.factors, np.zeros((H_h2.dim, 1)))

    def test_smash_matvec_matches(self, points_2d):
        H = inspector(points_2d, kernel=InverseDistanceKernel(),
                      structure="h2-geometric", tau=0.65, leaf_size=32,
                      bacc=1e-6, seed=0, p=4)
        rng = np.random.default_rng(2)
        w = rng.random(H.dim)
        ref = evaluate_reference(H.factors, w)
        out = SMASHBaseline().evaluate(H.factors, w)
        np.testing.assert_allclose(out, ref, atol=1e-10)

    def test_smash_rejects_matmul(self, H_h2):
        with pytest.raises(ValueError, match="Q=1"):
            SMASHBaseline().evaluate(H_h2.factors, np.zeros((H_h2.dim, 4)))

    def test_gemm_is_exact(self, points_2d, H_h2):
        k = GaussianKernel(0.5)
        rng = np.random.default_rng(3)
        W = rng.random((H_h2.dim, 2))
        out = DenseGEMM(k).evaluate(H_h2.factors, W)
        K = k.block(H_h2.tree.ordered_points, H_h2.tree.ordered_points)
        np.testing.assert_allclose(out, K @ W, atol=1e-10)

    def test_matrox_system_matches(self, H_h2):
        rng = np.random.default_rng(4)
        W = rng.random((H_h2.dim, 2))
        ref = evaluate_reference(H_h2.factors, W)
        out = MatRoxSystem(H_h2).evaluate(H_h2.factors, W)
        np.testing.assert_allclose(out, ref, atol=1e-10)


class TestCapabilityTable:
    """Section 4.1's restrictions reproduced."""

    def test_gofmm_supports_everything(self):
        assert GOFMMBaseline().supports(100_000, 780, 2048, "h2-budget")

    def test_strumpack_hss_only(self):
        s = STRUMPACKBaseline()
        assert s.supports(20_000, 16, 2048, "hss")
        assert not s.supports(20_000, 16, 2048, "h2-geometric")

    def test_strumpack_small_datasets_only(self):
        s = STRUMPACKBaseline()
        assert s.supports(32_000, 2, 2048, "hss")      # unit
        assert not s.supports(100_000, 28, 2048, "hss")  # higgs

    def test_smash_low_dim_matvec_only(self):
        s = SMASHBaseline()
        assert s.supports(80_000, 3, 1, "h2-geometric")
        assert not s.supports(80_000, 4, 1, "h2-geometric")
        assert not s.supports(80_000, 2, 2048, "h2-geometric")


class TestSimulatedOrderings:
    """The relative orderings the paper's Figures 5 and 7 report."""

    def test_matrox_beats_gofmm(self, H_hss, machine):
        q = 512
        t_m = MatRoxSystem(H_hss).simulate(H_hss.factors, q, machine).time_s
        t_g = GOFMMBaseline().simulate(H_hss.factors, q, machine).time_s
        assert t_g > t_m

    def test_matrox_beats_strumpack(self, H_hss, machine):
        q = 512
        t_m = MatRoxSystem(H_hss).simulate(H_hss.factors, q, machine).time_s
        t_s = STRUMPACKBaseline().simulate(H_hss.factors, q, machine).time_s
        assert t_s > t_m

    def test_ladder_monotone_improvement(self, H_h2, machine):
        runs = MatRoxSystem(H_h2).simulate_ladder(512, machine)
        times = [runs[r].time_s for r in LADDER]
        # Each rung must not regress by more than noise (5%).
        for a, b in zip(times, times[1:], strict=False):
            assert b <= a * 1.05

    def test_hmatrix_beats_gemm_for_large_q(self, machine):
        """The 18x-vs-GEMM claim at Q=2K. N must be large enough that the
        O(N) compressed flops beat the O(N^2) dense flops despite the dense
        GEMM's higher hardware efficiency."""
        pts = np.random.default_rng(9).random((2500, 2))
        H = inspector(pts, kernel=GaussianKernel(0.5), structure="hss",
                      leaf_size=32, bacc=1e-4, seed=0, p=12)
        q = 2048
        t_m = MatRoxSystem(H).simulate(H.factors, q, machine).time_s
        t_d = DenseGEMM().simulate(H.factors, q, machine).time_s
        assert t_d > t_m

    def test_matrox_scales_with_cores(self, H_hss, machine):
        mx = MatRoxSystem(H_hss)
        t1 = mx.simulate(H_hss.factors, 512, machine, p=1).time_s
        t8 = mx.simulate(H_hss.factors, 512, machine, p=8).time_s
        assert t1 / t8 > 3

    def test_gofmm_scales_worse_than_matrox(self, H_hss, machine):
        mx, go = MatRoxSystem(H_hss), GOFMMBaseline()
        s_m = (mx.simulate(H_hss.factors, 512, machine, p=1).time_s
               / mx.simulate(H_hss.factors, 512, machine, p=12).time_s)
        s_g = (go.simulate(H_hss.factors, 512, machine, p=1).time_s
               / go.simulate(H_hss.factors, 512, machine, p=12).time_s)
        assert s_m > s_g

    def test_locality_cds_lower_than_tb(self, H_hss, machine):
        loc_m = MatRoxSystem(H_hss).locality(machine)
        loc_g = GOFMMBaseline().locality(H_hss.factors, machine)
        assert loc_m < loc_g

    def test_invalid_ladder_rung(self, H_h2, machine):
        with pytest.raises(ValueError, match="rung"):
            MatRoxSystem(H_h2).simulate(H_h2.factors, 8, machine, rung="+magic")
