"""KernelService: concurrency, micro-batching, correctness, stats."""

import threading

import numpy as np
import pytest

from repro import KernelService, PlanConfig, PlanStore, Session
from repro.api.service import ServiceClosed

PLAN = PlanConfig(leaf_size=32, bacc=1e-6, p=4, seed=0)


@pytest.fixture()
def service(points_2d, gaussian_kernel):
    with KernelService(plan=PLAN, max_batch=4, max_wait_ms=5.0) as svc:
        svc.register("grid", points_2d, kernel=gaussian_kernel, warm=True)
        yield svc


class TestCorrectness:
    def test_matches_direct_matmul(self, service, points_2d, hmatrix_2d,
                                   rng):
        W = np.random.default_rng(0).random((len(points_2d), 5))
        Y = service.request("grid", W, timeout=30)
        np.testing.assert_allclose(Y, hmatrix_2d.matmul(W), atol=1e-12)

    def test_vector_request_squeezed(self, service, points_2d, hmatrix_2d):
        w = np.random.default_rng(1).random(len(points_2d))
        y = service.request("grid", w, timeout=30)
        assert y.shape == (len(points_2d),)
        np.testing.assert_allclose(y, hmatrix_2d.matmul(w), atol=1e-12)

    def test_batched_results_equal_solo(self, points_2d, gaussian_kernel,
                                        hmatrix_2d):
        """Stacked-GEMM micro-batching must be invisible in the numbers."""
        g = np.random.default_rng(2)
        panels = [g.random((len(points_2d), q)) for q in (1, 3, 2, 1, 4)]
        with KernelService(plan=PLAN, max_batch=8, max_wait_ms=20.0) as svc:
            svc.register("grid", points_2d, kernel=gaussian_kernel,
                         warm=True)
            futures = [svc.submit("grid", W) for W in panels]
            results = [f.result(30) for f in futures]
            stats = svc.stats()
        assert stats["max_batch_observed"] >= 2  # batching actually happened
        for W, Y in zip(panels, results, strict=True):
            np.testing.assert_allclose(Y, hmatrix_2d.matmul(W), atol=1e-12)

    def test_mixed_endpoints_not_cross_batched(self, points_2d, points_hd,
                                               gaussian_kernel):
        with KernelService(plan=PLAN, max_batch=8, max_wait_ms=20.0) as svc:
            svc.register("a", points_2d, kernel=gaussian_kernel, warm=True)
            svc.register("b", points_hd, kernel=gaussian_kernel, warm=True)
            g = np.random.default_rng(3)
            futs = [svc.submit("a", g.random(len(points_2d))),
                    svc.submit("b", g.random(len(points_hd))),
                    svc.submit("a", g.random(len(points_2d)))]
            ya, yb, ya2 = [f.result(30) for f in futs]
        assert ya.shape == (len(points_2d),)
        assert yb.shape == (len(points_hd),)
        assert ya2.shape == (len(points_2d),)


class TestConcurrency:
    def test_concurrent_submitters(self, service, points_2d, hmatrix_2d):
        n = len(points_2d)
        results: dict[int, np.ndarray] = {}
        panels = {i: np.random.default_rng(i).random((n, 2))
                  for i in range(12)}
        errors = []

        def client(i):
            try:
                results[i] = service.request("grid", panels[i], timeout=60)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in panels]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for i, W in panels.items():
            np.testing.assert_allclose(results[i], hmatrix_2d.matmul(W),
                                       atol=1e-12)

    def test_serving_with_store_never_inspects(self, tmp_path, points_2d,
                                               gaussian_kernel):
        d = tmp_path / "store"
        with Session(plan=PLAN, store=PlanStore(d)) as compiler:
            compiler.inspect(points_2d, kernel=gaussian_kernel)
        with KernelService(store=PlanStore(d), plan=PLAN) as svc:
            svc.register("grid", points_2d, kernel=gaussian_kernel,
                         warm=True)
            svc.request("grid", np.ones(len(points_2d)), timeout=30)
            assert svc.session.stats.p1_builds == 0
            assert svc.session.stats.p2_builds == 0


class TestValidationAndLifecycle:
    def test_unknown_points_id(self, service):
        with pytest.raises(KeyError, match="register"):
            service.submit("nope", np.ones(3))

    def test_wrong_rows_raises_at_submit(self, service):
        with pytest.raises(ValueError, match="rows"):
            service.submit("grid", np.ones(7))

    def test_shape_reporting(self, service, points_2d):
        assert service.shape("grid") == (len(points_2d), len(points_2d))
        with pytest.raises(KeyError):
            service.shape("nope")

    def test_bad_construction_args(self):
        with pytest.raises(ValueError, match="max_batch"):
            KernelService(max_batch=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            KernelService(max_wait_ms=-1)

    def test_close_drains_pending(self, points_2d, gaussian_kernel):
        svc = KernelService(plan=PLAN, max_batch=4)
        svc.register("grid", points_2d, kernel=gaussian_kernel, warm=True)
        futs = [svc.submit("grid", np.ones(len(points_2d)))
                for _ in range(6)]
        svc.close()
        for f in futs:
            assert f.result(timeout=1) is not None

    def test_submit_after_close_raises(self, points_2d, gaussian_kernel):
        svc = KernelService(plan=PLAN)
        svc.register("grid", points_2d, kernel=gaussian_kernel)
        svc.close()
        with pytest.raises(ServiceClosed):
            svc.submit("grid", np.ones(len(points_2d)))
        with pytest.raises(ServiceClosed):
            svc.register("again", points_2d)
        svc.close()  # idempotent

    def test_drain_completes_queued_futures(self, points_2d,
                                            gaussian_kernel, hmatrix_2d):
        """Queued Futures must COMPLETE during drain — drain() stops
        intake, it never abandons accepted work with ServiceClosed."""
        svc = KernelService(plan=PLAN, max_batch=2, max_wait_ms=50.0)
        try:
            svc.register("grid", points_2d, kernel=gaussian_kernel,
                         warm=True)
            panels = [np.random.default_rng(i).random((len(points_2d), 2))
                      for i in range(6)]
            futs = [svc.submit("grid", W) for W in panels]
            assert svc.drain(timeout=60) is True
            for W, f in zip(panels, futs, strict=True):
                Y = f.result(timeout=1)  # already done, no ServiceClosed
                np.testing.assert_allclose(Y, hmatrix_2d.matmul(W),
                                           atol=1e-12)
            stats = svc.stats()
            assert stats["served"] == len(panels)
            assert stats["errors"] == 0
            assert stats["queue_depth"] == 0
            assert stats["inflight"] == 0
            assert stats["draining"] is True
            assert stats["dispatcher_alive"] is True  # close() not yet run
        finally:
            svc.close()

    def test_drain_refuses_new_work_but_keeps_stats(self, points_2d,
                                                    gaussian_kernel):
        svc = KernelService(plan=PLAN)
        try:
            svc.register("grid", points_2d, kernel=gaussian_kernel,
                         warm=True)
            svc.request("grid", np.ones(len(points_2d)), timeout=30)
            assert svc.drain(timeout=30) is True
            with pytest.raises(ServiceClosed):
                svc.submit("grid", np.ones(len(points_2d)))
            with pytest.raises(ServiceClosed):
                svc.register("other", points_2d)
            assert svc.drain(timeout=1) is True  # idempotent
            assert svc.stats()["served"] == 1  # post-drain stats still work
        finally:
            svc.close()

    def test_drain_timeout_returns_false_then_succeeds(self, points_2d,
                                                       gaussian_kernel):
        """A 0-timeout drain with work in flight reports False; the
        drain state persists and a later wait finishes cleanly."""
        release = threading.Event()
        started = threading.Event()

        from repro.kernels.gaussian import GaussianKernel

        class _SlowKernel(GaussianKernel):
            def block(self, X, Y):
                started.set()
                release.wait(30)
                return super().block(X, Y)

        svc = KernelService(plan=PLAN, max_wait_ms=0.0)
        try:
            svc.register("grid", points_2d,
                         kernel=_SlowKernel(bandwidth=0.5))
            fut = svc.submit("grid", np.ones(len(points_2d)))
            assert started.wait(30)  # the batch is inside the dispatcher
            assert svc.drain(timeout=0.01) is False
            release.set()
            assert svc.drain(timeout=60) is True
            assert fut.result(timeout=1) is not None
        finally:
            release.set()
            svc.close()

    def test_borrowed_session_left_open(self, points_2d, gaussian_kernel):
        with Session(plan=PLAN) as session:
            with KernelService(session=session) as svc:
                svc.register("grid", points_2d, kernel=gaussian_kernel)
                svc.request("grid", np.ones(len(points_2d)), timeout=30)
            # service closed; the borrowed session must still work
            H = session.inspect(points_2d, kernel=gaussian_kernel)
            assert session.matmul(H, np.ones(len(points_2d))) is not None


class TestStats:
    def test_latency_and_queue_stats_exposed(self, service, points_2d):
        for _ in range(3):
            service.request("grid", np.ones(len(points_2d)), timeout=30)
        stats = service.stats()
        assert stats["served"] == 3
        assert stats["errors"] == 0
        assert stats["p99_ms"] >= stats["p50_ms"] > 0
        assert stats["mean_ms"] > 0
        assert stats["queue_depth"] == 0
        assert stats["max_queue_depth"] >= 1
        assert stats["batches"] >= 1

    def test_execution_errors_counted_and_raised(self, points_2d,
                                                 monkeypatch):
        with KernelService(plan=PLAN, max_wait_ms=0.0) as svc:
            svc.register("grid", points_2d, warm=True)

            def boom(*a, **k):
                raise RuntimeError("injected")

            monkeypatch.setattr(svc.session, "matmul", boom)
            fut = svc.submit("grid", np.ones(len(points_2d)))
            with pytest.raises(RuntimeError, match="injected"):
                fut.result(30)
            assert svc.stats()["errors"] == 1


class TestRegisterReturnValue:
    def test_register_reports_built_vs_cached(self, tmp_path, points_2d,
                                              gaussian_kernel):
        """register(warm=True) says whether *this* call built the plan —
        the server's `compiled` response field rides on it, so a cache
        or store hit must come back False."""
        store = tmp_path / "store"
        with KernelService(plan=PLAN, store=store) as svc:
            assert svc.register("grid", points_2d, kernel=gaussian_kernel,
                                warm=True) is True
            # same artifact, fresh id: session cache hit, not a build
            assert svc.register("grid2", points_2d, kernel=gaussian_kernel,
                                warm=True) is False
            # no warm: nothing materialized, so nothing was built
            assert svc.register("lazy", points_2d,
                                kernel=gaussian_kernel) is False
        with KernelService(plan=PLAN, store=store) as svc2:
            # fresh session over the same store: disk hit, still False
            assert svc2.register("grid", points_2d, kernel=gaussian_kernel,
                                 warm=True) is False


class TestReRegistration:
    def test_queued_requests_keep_their_binding(self, points_2d, points_hd,
                                                gaussian_kernel,
                                                hmatrix_2d):
        """Re-registering a points_id must not reroute already-queued
        requests to the new endpoint (they were validated against the
        old one)."""
        with KernelService(plan=PLAN, max_batch=8, max_wait_ms=50.0) as svc:
            svc.register("t", points_2d, kernel=gaussian_kernel, warm=True)
            W = np.random.default_rng(7).random((len(points_2d), 2))
            fut = svc.submit("t", W)
            # Swap the endpoint while the request may still be queued.
            svc.register("t", points_hd, kernel=gaussian_kernel)
            Y = fut.result(30)
        np.testing.assert_allclose(Y, hmatrix_2d.matmul(W), atol=1e-12)
        # New submissions bind to the new endpoint (different n).
        with KernelService(plan=PLAN) as svc2:
            svc2.register("t", points_hd, kernel=gaussian_kernel)
            assert svc2.shape("t") == (len(points_hd), len(points_hd))


class TestBufferAndCallbackSafety:
    def test_caller_mutating_w_after_submit_is_safe(self, points_2d,
                                                    gaussian_kernel,
                                                    hmatrix_2d):
        """submit() snapshots the panel: reusing the buffer afterwards
        must not corrupt the served product."""
        with KernelService(plan=PLAN, max_batch=4, max_wait_ms=30.0) as svc:
            svc.register("grid", points_2d, kernel=gaussian_kernel,
                         warm=True)
            W = np.random.default_rng(11).random((len(points_2d), 2))
            expected = hmatrix_2d.matmul(W)
            fut = svc.submit("grid", W)
            W[:] = -1.0  # dispatcher may not have run yet
            np.testing.assert_allclose(fut.result(30), expected,
                                       atol=1e-12)

    def test_done_callback_may_submit_followup(self, points_2d,
                                               gaussian_kernel):
        """Futures resolve outside the service lock, so a done-callback
        (which runs on the dispatcher thread) can call submit() for a
        follow-up request without deadlocking the service. (Blocking
        *inside* a callback is still forbidden, as for any
        concurrent.futures executor.)"""
        import concurrent.futures

        with KernelService(plan=PLAN, max_batch=2, max_wait_ms=0.0) as svc:
            svc.register("grid", points_2d, kernel=gaussian_kernel,
                         warm=True)
            chained: concurrent.futures.Future = concurrent.futures.Future()

            def chain(fut):
                chained.set_result(
                    svc.submit("grid", np.ones(len(points_2d))))

            first = svc.submit("grid", np.ones(len(points_2d)))
            first.add_done_callback(chain)
            followup = chained.result(30)   # submit() did not block
            assert followup.result(30) is not None


def test_cancelled_future_does_not_kill_dispatcher(points_2d,
                                                   gaussian_kernel):
    """Cancelling a queued request must not crash the dispatcher or
    starve the other requests in its batch."""
    with KernelService(plan=PLAN, max_batch=4, max_wait_ms=50.0) as svc:
        svc.register("grid", points_2d, kernel=gaussian_kernel, warm=True)
        n = len(points_2d)
        first = svc.submit("grid", np.ones(n))
        second = svc.submit("grid", np.ones(n))
        cancelled = second.cancel()  # may lose the race with the batcher
        assert first.result(30) is not None
        if cancelled:
            assert second.cancelled()
        else:
            assert second.result(30) is not None
        # The service must still be alive and serving.
        assert svc.request("grid", np.ones(n), timeout=30) is not None


class TestDispatcherCrash:
    """Regression: a dispatcher-machinery exception during drain used to
    kill the thread silently, leaving every queued Future hung forever.
    The service must fail closed instead: pending futures complete with
    ServiceClosed (chained to the crash), the crash is counted, and
    close() returns promptly."""

    def _crashing_service(self, points_2d, gaussian_kernel):
        svc = KernelService(plan=PLAN, max_batch=4, max_wait_ms=200.0)
        svc.register("grid", points_2d, kernel=gaussian_kernel, warm=True)

        def broken_take_batch():
            raise RuntimeError("injected dispatch defect")

        # Patch the dispatch machinery itself (not the per-batch execute
        # path, which already fences errors into Futures).
        svc._take_batch = broken_take_batch
        return svc

    def test_queued_futures_fail_not_hang(self, points_2d,
                                          gaussian_kernel):
        svc = self._crashing_service(points_2d, gaussian_kernel)
        try:
            fut = svc.submit("grid", np.ones(len(points_2d)))
            with pytest.raises(ServiceClosed, match="dispatcher crashed"):
                fut.result(timeout=30)  # would hang forever before the fix
            assert isinstance(fut.exception(), ServiceClosed)
            assert isinstance(fut.exception().__cause__, RuntimeError)
            # The Future completes *before* the crashing thread unwinds;
            # wait for the unwind so liveness is settled.
            svc._dispatcher.join(timeout=30)
            stats = svc.stats()
            assert stats["dispatcher_crashes"] == 1
            assert stats["dispatcher_alive"] is False
            assert stats["errors"] == 1
            with pytest.raises(ServiceClosed):
                svc.submit("grid", np.ones(len(points_2d)))
        finally:
            svc.close(timeout=30)

    def test_close_completes_leftover_queue(self, points_2d,
                                            gaussian_kernel):
        """Even a Future that slipped into the queue around the crash is
        completed with ServiceClosed by close()'s safety net."""
        svc = self._crashing_service(points_2d, gaussian_kernel)
        fut = svc.submit("grid", np.ones(len(points_2d)))
        svc.close(timeout=30)
        with pytest.raises(ServiceClosed):
            fut.result(timeout=1)
        assert svc.stats()["queue_depth"] == 0

    def test_healthy_service_reports_no_crashes(self, service, points_2d):
        service.request("grid", np.ones(len(points_2d)), timeout=30)
        stats = service.stats()
        assert stats["dispatcher_crashes"] == 0
        assert stats["dispatcher_alive"] is True
