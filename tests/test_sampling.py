"""Unit tests for the sampling module (kNN, rp-trees, importance, plans)."""

import numpy as np
import pytest

from repro.sampling import (
    build_sampling_plan,
    exact_knn,
    importance_sample,
    node_neighbor_lists,
    rptree_knn,
)
from repro.sampling.rptree import knn_recall
from repro.tree import build_cluster_tree


class TestExactKnn:
    def test_matches_bruteforce(self, rng):
        pts = rng.random((60, 3))
        knn = exact_knn(pts, k=5)
        for i in range(60):
            d = np.linalg.norm(pts - pts[i], axis=1)
            d[i] = np.inf
            expect = set(np.argsort(d)[:5].tolist())
            assert set(knn[i].tolist()) == expect

    def test_excludes_self(self, rng):
        pts = rng.random((40, 2))
        knn = exact_knn(pts, k=3)
        for i in range(40):
            assert i not in knn[i]

    def test_chunking_consistent(self, rng):
        pts = rng.random((100, 2))
        a = exact_knn(pts, k=4, chunk=7)
        b = exact_knn(pts, k=4, chunk=1000)
        np.testing.assert_array_equal(a, b)

    def test_k_bounds(self, rng):
        pts = rng.random((10, 2))
        with pytest.raises(ValueError):
            exact_knn(pts, k=0)
        with pytest.raises(ValueError):
            exact_knn(pts, k=10)

    def test_sorted_by_distance(self, rng):
        pts = rng.random((50, 2))
        knn = exact_knn(pts, k=6)
        for i in range(50):
            d = np.linalg.norm(pts[knn[i]] - pts[i], axis=1)
            assert (np.diff(d) >= -1e-12).all()


class TestRptreeKnn:
    def test_high_recall_on_clustered_data(self, points_hd):
        exact = exact_knn(points_hd, k=8)
        approx = rptree_knn(points_hd, k=8, n_trees=6, leaf_size=64, seed=0)
        assert knn_recall(approx, exact) > 0.6

    def test_more_trees_improve_recall(self, rng):
        pts = rng.random((400, 8))
        exact = exact_knn(pts, k=6)
        r1 = knn_recall(rptree_knn(pts, k=6, n_trees=1, seed=0), exact)
        r8 = knn_recall(rptree_knn(pts, k=6, n_trees=8, seed=0), exact)
        assert r8 >= r1

    def test_no_self_and_no_invalid(self, rng):
        pts = rng.random((200, 5))
        knn = rptree_knn(pts, k=4, seed=0)
        assert (knn >= 0).all() and (knn < 200).all()
        for i in range(200):
            assert i not in knn[i]

    def test_deterministic_given_seed(self, rng):
        pts = rng.random((150, 4))
        a = rptree_knn(pts, k=5, seed=42)
        b = rptree_knn(pts, k=5, seed=42)
        np.testing.assert_array_equal(a, b)

    def test_duplicate_points_handled(self):
        pts = np.ones((30, 3))
        knn = rptree_knn(pts, k=3, seed=0)
        assert knn.shape == (30, 3)
        assert (knn >= 0).all()


class TestNodeNeighborLists:
    def test_excludes_own_points(self, points_2d):
        tree = build_cluster_tree(points_2d, leaf_size=32)
        knn = exact_knn(points_2d, k=5)
        lists = node_neighbor_lists(tree, knn)
        for v in range(tree.num_nodes):
            own = set(tree.node_point_indices(v).tolist())
            assert own.isdisjoint(lists[v].tolist())

    def test_root_list_empty(self, points_2d):
        tree = build_cluster_tree(points_2d, leaf_size=32)
        knn = exact_knn(points_2d, k=5)
        lists = node_neighbor_lists(tree, knn)
        assert len(lists[0]) == 0  # all points belong to the root

    def test_candidates_are_members_neighbors(self, points_2d):
        tree = build_cluster_tree(points_2d, leaf_size=32)
        knn = exact_knn(points_2d, k=5)
        lists = node_neighbor_lists(tree, knn)
        leaf = int(tree.leaves[0])
        all_nbrs = set(knn[tree.node_point_indices(leaf)].ravel().tolist())
        assert set(lists[leaf].tolist()) <= all_nbrs


class TestImportanceSample:
    def test_returns_all_when_small(self):
        cand = np.array([5, 3, 9])
        out = importance_sample(cand, None, 10, rng=0)
        np.testing.assert_array_equal(out, [3, 5, 9])

    def test_respects_size(self, rng):
        cand = np.arange(100)
        out = importance_sample(cand, None, 17, rng=0)
        assert len(out) == 17
        assert len(np.unique(out)) == 17

    def test_weight_bias(self):
        cand = np.arange(50)
        w = np.zeros(50)
        w[:5] = 1.0  # only the first five can be drawn
        out = importance_sample(cand, w, 5, rng=0)
        assert set(out.tolist()) == {0, 1, 2, 3, 4}

    def test_zero_weights_fall_back_to_uniform(self):
        out = importance_sample(np.arange(20), np.zeros(20), 6, rng=0)
        assert len(out) == 6

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            importance_sample(np.arange(5), np.array([-1, 1, 1, 1, 1.0]), 2)


class TestSamplingPlan:
    def test_plan_covers_all_nodes(self, points_2d):
        tree = build_cluster_tree(points_2d, leaf_size=32)
        plan = build_sampling_plan(tree, k=8, seed=0)
        assert set(plan.samples) == set(range(tree.num_nodes))

    def test_samples_outside_node(self, points_2d):
        tree = build_cluster_tree(points_2d, leaf_size=32)
        plan = build_sampling_plan(tree, k=8, seed=0)
        for v in range(tree.num_nodes):
            own = set(tree.node_point_indices(v).tolist())
            assert own.isdisjoint(plan.for_node(v).tolist())

    def test_root_has_no_samples(self, points_2d):
        tree = build_cluster_tree(points_2d, leaf_size=32)
        plan = build_sampling_plan(tree, k=8, seed=0)
        assert plan.num_samples(0) == 0

    def test_budget_respected(self, points_2d):
        tree = build_cluster_tree(points_2d, leaf_size=32)
        plan = build_sampling_plan(tree, k=8, num_samples=20, seed=0)
        for v in range(1, tree.num_nodes):
            assert plan.num_samples(v) <= 20

    def test_kernel_independent(self, points_2d):
        """The plan must depend only on points/tree/seed (reuse guarantee)."""
        tree = build_cluster_tree(points_2d, leaf_size=32)
        p1 = build_sampling_plan(tree, k=8, seed=3)
        p2 = build_sampling_plan(tree, k=8, seed=3)
        for v in range(tree.num_nodes):
            np.testing.assert_array_equal(p1.for_node(v), p2.for_node(v))

    def test_rptree_path_used_for_large_n(self, rng):
        pts = rng.random((500, 6))
        tree = build_cluster_tree(pts, leaf_size=64, seed=0)
        plan = build_sampling_plan(tree, k=4, exact_threshold=100, seed=0)
        assert plan.method == "rptree"

    def test_stats_populated(self, points_2d):
        tree = build_cluster_tree(points_2d, leaf_size=32)
        plan = build_sampling_plan(tree, k=8, seed=0)
        assert plan.stats["knn_method"] == "exact"
        assert plan.stats["mean_samples"] > 0
