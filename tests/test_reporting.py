"""Tests for the ASCII chart primitives."""

import pytest

from repro.reporting import bar_chart, line_chart, scatter_plot


class TestBarChart:
    def test_contains_labels_and_values(self):
        out = bar_chart(["a", "bb"], {"sys1": [1.0, 2.0], "sys2": [2.0, 4.0]})
        assert "a" in out and "bb" in out
        assert "legend" in out
        assert "sys1" in out and "sys2" in out

    def test_bar_lengths_proportional(self):
        out = bar_chart(["x"], {"s": [10.0]}, width=20)
        full = bar_chart(["x", "y"], {"s": [10.0, 5.0]}, width=20)
        lines = [ln for ln in full.splitlines() if "|" in ln]
        n_full = lines[0].count("#")
        n_half = lines[1].count("#")
        assert n_full == 20 and n_half == 10

    def test_zero_values_ok(self):
        out = bar_chart(["z"], {"s": [0.0]})
        assert "|" in out

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            bar_chart(["a", "b"], {"s": [1.0]})


class TestLineChart:
    def test_renders_grid(self):
        out = line_chart([1, 2, 4, 8], {"m": [1, 2, 4, 8], "g": [1, 2, 3, 3]})
        assert out.count("|") >= 16 * 2
        assert "legend" in out

    def test_extremes_on_grid(self):
        out = line_chart([0, 1], {"s": [0.0, 10.0]}, width=10, height=5)
        rows = [ln for ln in out.splitlines() if ln.strip().startswith("|")]
        assert any("*" in r for r in rows)

    def test_constant_series_ok(self):
        out = line_chart([0, 1, 2], {"s": [5.0, 5.0, 5.0]})
        assert "*" in out

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError):
            line_chart([1], {"s": [1.0]})


class TestScatterPlot:
    def test_points_and_fit(self):
        x = [1.0, 2.0, 3.0, 4.0]
        y = [1.1, 2.1, 2.9, 4.2]
        out = scatter_plot(x, y)
        assert "*" in out
        assert "." in out  # fit line

    def test_no_fit_line(self):
        out = scatter_plot([1, 2, 3], [3, 1, 2], fit_line=False)
        assert "." not in out.replace("...", "")

    def test_mismatched_raises(self):
        with pytest.raises(ValueError):
            scatter_plot([1, 2], [1])
