"""Unit tests for admissibility conditions and HTree construction."""

import numpy as np
import pytest

from repro.htree import (
    BudgetAdmissibility,
    GeometricAdmissibility,
    HSSAdmissibility,
    build_htree,
    make_admissibility,
)
from repro.tree import build_cluster_tree


@pytest.fixture(scope="module")
def tree_2d(points_2d):
    return build_cluster_tree(points_2d, leaf_size=32)


class TestAdmissibilityRules:
    def test_geometric_far_for_distant_nodes(self, tree_2d):
        adm = GeometricAdmissibility(tau=1e6)  # everything far
        leaves = tree_2d.leaves
        assert adm.is_far(tree_2d, int(leaves[0]), int(leaves[-1]))

    def test_geometric_near_for_tiny_tau(self, tree_2d):
        adm = GeometricAdmissibility(tau=1e-6)  # nothing far
        leaves = tree_2d.leaves
        assert not adm.is_far(tree_2d, int(leaves[0]), int(leaves[-1]))

    def test_geometric_self_never_far(self, tree_2d):
        adm = GeometricAdmissibility(tau=1e6)
        assert not adm.is_far(tree_2d, 3, 3)

    def test_geometric_formula(self, tree_2d):
        adm = GeometricAdmissibility(tau=0.65)
        a, b = int(tree_2d.leaves[0]), int(tree_2d.leaves[-1])
        expect = 0.65 * tree_2d.distance(a, b) > (
            tree_2d.diameter(a) + tree_2d.diameter(b)
        )
        assert adm.is_far(tree_2d, a, b) == expect

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            GeometricAdmissibility(tau=0.0)

    def test_hss_all_offdiagonal_far(self, tree_2d):
        adm = HSSAdmissibility()
        assert adm.is_far(tree_2d, 1, 2)
        assert not adm.is_far(tree_2d, 1, 1)

    def test_budget_zero_equals_hss(self, tree_2d):
        adm = BudgetAdmissibility(budget=0.0)
        adm.prepare(tree_2d)
        assert adm.is_far(tree_2d, 1, 2)

    def test_budget_one_keeps_everything_near(self, tree_2d):
        adm = BudgetAdmissibility(budget=1.0)
        adm.prepare(tree_2d)
        # With full budget, same-level neighbours are near.
        assert not adm.is_far(tree_2d, 1, 2)

    def test_budget_symmetric(self, tree_2d):
        adm = BudgetAdmissibility(budget=0.1)
        adm.prepare(tree_2d)
        nodes = tree_2d.levels()[2]
        for a in nodes[:4]:
            for b in nodes[:4]:
                if a != b:
                    assert adm.is_far(tree_2d, int(a), int(b)) == adm.is_far(
                        tree_2d, int(b), int(a)
                    )

    def test_budget_invalid(self):
        with pytest.raises(ValueError):
            BudgetAdmissibility(budget=1.5)

    def test_factory(self):
        assert make_admissibility("hss").structure_name == "hss"
        assert make_admissibility("h2", tau=0.5).tau == 0.5
        assert make_admissibility("h2-b", budget=0.1).budget == 0.1
        with pytest.raises(ValueError):
            make_admissibility("h3")


class TestHTree:
    @pytest.mark.parametrize("structure,params", [
        ("h2-geometric", {"tau": 0.65}),
        ("hss", {}),
        ("h2-b", {"budget": 0.03}),
    ])
    def test_structural_invariants(self, tree_2d, structure, params):
        ht = build_htree(tree_2d, structure, **params)
        ht.validate()

    @pytest.mark.parametrize("structure,params", [
        ("h2-geometric", {"tau": 0.65}),
        ("hss", {}),
        ("h2-b", {"budget": 0.03}),
    ])
    def test_interactions_tile_matrix_exactly_once(self, tree_2d, structure, params):
        """Every (row, col) entry must be covered by exactly one interaction."""
        ht = build_htree(tree_2d, structure, **params)
        covered = ht.coverage_matrix()
        assert (covered == 1).all(), (
            f"{structure}: min={covered.min()}, max={covered.max()}"
        )

    def test_hss_near_is_leaf_diagonal_only(self, tree_2d):
        ht = build_htree(tree_2d, "hss")
        for i, partners in ht.near.items():
            assert partners == [i]

    def test_hss_far_are_siblings(self, tree_2d):
        ht = build_htree(tree_2d, "hss")
        for i, partners in ht.far.items():
            for j in partners:
                assert tree_2d.parent[i] == tree_2d.parent[j]

    def test_geometric_large_tau_reduces_near(self, tree_2d):
        loose = build_htree(tree_2d, "h2-geometric", tau=10.0)
        tight = build_htree(tree_2d, "h2-geometric", tau=0.3)
        assert loose.num_near() < tight.num_near()

    def test_near_lists_include_self(self, tree_2d):
        ht = build_htree(tree_2d, "h2-geometric", tau=0.65)
        for leaf in tree_2d.leaves:
            assert int(leaf) in ht.near[int(leaf)]

    def test_far_found_at_highest_level(self, tree_2d):
        """If (a, b) is a far pair, their parents must not be admissible
        (otherwise the interaction would have been recorded higher up)."""
        adm = GeometricAdmissibility(tau=0.65)
        ht = build_htree(tree_2d, adm)
        for i, j in ht.far_pairs():
            pi, pj = int(tree_2d.parent[i]), int(tree_2d.parent[j])
            if pi == pj or pi < 0 or pj < 0:
                continue
            assert not adm.is_far(tree_2d, pi, pj)

    def test_nodes_with_basis_closed_under_children(self, tree_2d):
        ht = build_htree(tree_2d, "h2-geometric", tau=0.65)
        basis = set(ht.nodes_with_basis())
        for v in basis:
            if not tree_2d.is_leaf(v):
                assert int(tree_2d.lchild[v]) in basis
                assert int(tree_2d.rchild[v]) in basis

    def test_root_never_has_basis(self, tree_2d):
        for structure in ("hss", "h2-geometric"):
            ht = build_htree(tree_2d, structure)
            assert 0 not in ht.nodes_with_basis()

    def test_single_leaf_tree(self):
        pts = np.random.default_rng(0).random((8, 2))
        tree = build_cluster_tree(pts, leaf_size=16)
        ht = build_htree(tree, "hss")
        assert ht.near_pairs() == [(0, 0)]
        assert ht.far_pairs() == []
