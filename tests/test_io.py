"""Round-trip tests for HMatrix and InspectionP1 persistence."""

import numpy as np

from repro.core.io import (
    load_hmatrix,
    load_inspection_p1,
    save_hmatrix,
    save_inspection_p1,
)


class TestHMatrixRoundtrip:
    def test_product_identical(self, hmatrix_2d, tmp_path):
        path = save_hmatrix(hmatrix_2d, tmp_path / "hmat.npz")
        H2 = load_hmatrix(path)
        rng = np.random.default_rng(0)
        W = rng.random((hmatrix_2d.dim, 5))
        np.testing.assert_array_equal(hmatrix_2d.matmul(W), H2.matmul(W))

    def test_buffers_bit_exact(self, hmatrix_2d, tmp_path):
        path = save_hmatrix(hmatrix_2d, tmp_path / "hmat.npz")
        H2 = load_hmatrix(path)
        np.testing.assert_array_equal(H2.cds.basis_buf,
                                      hmatrix_2d.cds.basis_buf)
        np.testing.assert_array_equal(H2.cds.near_buf,
                                      hmatrix_2d.cds.near_buf)
        np.testing.assert_array_equal(H2.cds.far_buf, hmatrix_2d.cds.far_buf)

    def test_structure_preserved(self, hmatrix_2d, tmp_path):
        path = save_hmatrix(hmatrix_2d, tmp_path / "hmat.npz")
        H2 = load_hmatrix(path)
        assert H2.dim == hmatrix_2d.dim
        assert H2.factors.htree.structure == hmatrix_2d.factors.htree.structure
        np.testing.assert_array_equal(H2.sranks, hmatrix_2d.sranks)
        assert H2.factors.htree.near_pairs() == (
            hmatrix_2d.factors.htree.near_pairs())
        assert H2.factors.htree.far_pairs() == (
            hmatrix_2d.factors.htree.far_pairs())

    def test_lowering_decision_preserved(self, hmatrix_2d, tmp_path):
        path = save_hmatrix(hmatrix_2d, tmp_path / "hmat.npz")
        H2 = load_hmatrix(path)
        d1, d2 = hmatrix_2d.evaluator.decision, H2.evaluator.decision
        assert (d1.block_near, d1.block_far, d1.coarsen, d1.peel_root) == (
            d2.block_near, d2.block_far, d2.coarsen, d2.peel_root)

    def test_permutation_preserved(self, hmatrix_2d, tmp_path):
        path = save_hmatrix(hmatrix_2d, tmp_path / "hmat.npz")
        H2 = load_hmatrix(path)
        np.testing.assert_array_equal(H2.tree.perm, hmatrix_2d.tree.perm)

    def test_metadata_scalars_survive(self, hmatrix_2d, tmp_path):
        path = save_hmatrix(hmatrix_2d, tmp_path / "hmat.npz")
        H2 = load_hmatrix(path)
        assert H2.metadata.get("bacc") == hmatrix_2d.metadata.get("bacc")

    def test_no_pickle_in_file(self, hmatrix_2d, tmp_path):
        """Files must load with allow_pickle=False (safe to share)."""
        path = save_hmatrix(hmatrix_2d, tmp_path / "hmat.npz")
        with np.load(path, allow_pickle=False) as data:
            assert "manifest" in data.files


class TestInspectionP1Roundtrip:
    def test_roundtrip_reusable_for_p2(self, p1_2d, inspector_small,
                                       gaussian_kernel, tmp_path):
        path = save_inspection_p1(p1_2d, tmp_path / "p1.npz")
        p1b = load_inspection_p1(path)
        H_a = inspector_small.run_p2(p1_2d, gaussian_kernel)
        H_b = inspector_small.run_p2(p1b, gaussian_kernel)
        rng = np.random.default_rng(1)
        W = rng.random((H_a.dim, 3))
        np.testing.assert_allclose(H_a.matmul(W), H_b.matmul(W), atol=1e-10)

    def test_sampling_plan_identical(self, p1_2d, tmp_path):
        path = save_inspection_p1(p1_2d, tmp_path / "p1.npz")
        p1b = load_inspection_p1(path)
        for v in range(p1_2d.tree.num_nodes):
            np.testing.assert_array_equal(p1b.plan.for_node(v),
                                          p1_2d.plan.for_node(v))
        assert p1b.plan.k == p1_2d.plan.k
        assert p1b.plan.method == p1_2d.plan.method

    def test_blocksets_identical(self, p1_2d, tmp_path):
        path = save_inspection_p1(p1_2d, tmp_path / "p1.npz")
        p1b = load_inspection_p1(path)
        assert p1b.near_blockset.blocks == p1_2d.near_blockset.blocks
        assert p1b.far_blockset.blocks == p1_2d.far_blockset.blocks

    def test_htree_identical(self, p1_2d, tmp_path):
        path = save_inspection_p1(p1_2d, tmp_path / "p1.npz")
        p1b = load_inspection_p1(path)
        assert p1b.htree.near == p1_2d.htree.near
        assert p1b.htree.far == p1_2d.htree.far
        assert p1b.htree.structure == p1_2d.htree.structure
