"""Round-trip tests for HMatrix and InspectionP1 persistence."""

import numpy as np
import pytest

from repro.core.inspector import Inspector
from repro.core.io import (
    PlanStoreError,
    load_hmatrix,
    load_inspection_p1,
    save_hmatrix,
    save_inspection_p1,
)


class TestHMatrixRoundtrip:
    def test_product_identical(self, hmatrix_2d, tmp_path):
        path = save_hmatrix(hmatrix_2d, tmp_path / "hmat.npz")
        H2 = load_hmatrix(path)
        rng = np.random.default_rng(0)
        W = rng.random((hmatrix_2d.dim, 5))
        np.testing.assert_array_equal(hmatrix_2d.matmul(W), H2.matmul(W))

    def test_buffers_bit_exact(self, hmatrix_2d, tmp_path):
        path = save_hmatrix(hmatrix_2d, tmp_path / "hmat.npz")
        H2 = load_hmatrix(path)
        np.testing.assert_array_equal(H2.cds.basis_buf,
                                      hmatrix_2d.cds.basis_buf)
        np.testing.assert_array_equal(H2.cds.near_buf,
                                      hmatrix_2d.cds.near_buf)
        np.testing.assert_array_equal(H2.cds.far_buf, hmatrix_2d.cds.far_buf)

    def test_structure_preserved(self, hmatrix_2d, tmp_path):
        path = save_hmatrix(hmatrix_2d, tmp_path / "hmat.npz")
        H2 = load_hmatrix(path)
        assert H2.dim == hmatrix_2d.dim
        assert H2.factors.htree.structure == hmatrix_2d.factors.htree.structure
        np.testing.assert_array_equal(H2.sranks, hmatrix_2d.sranks)
        assert H2.factors.htree.near_pairs() == (
            hmatrix_2d.factors.htree.near_pairs())
        assert H2.factors.htree.far_pairs() == (
            hmatrix_2d.factors.htree.far_pairs())

    def test_lowering_decision_preserved(self, hmatrix_2d, tmp_path):
        path = save_hmatrix(hmatrix_2d, tmp_path / "hmat.npz")
        H2 = load_hmatrix(path)
        d1, d2 = hmatrix_2d.evaluator.decision, H2.evaluator.decision
        assert (d1.block_near, d1.block_far, d1.coarsen, d1.peel_root) == (
            d2.block_near, d2.block_far, d2.coarsen, d2.peel_root)

    def test_permutation_preserved(self, hmatrix_2d, tmp_path):
        path = save_hmatrix(hmatrix_2d, tmp_path / "hmat.npz")
        H2 = load_hmatrix(path)
        np.testing.assert_array_equal(H2.tree.perm, hmatrix_2d.tree.perm)

    def test_metadata_scalars_survive(self, hmatrix_2d, tmp_path):
        path = save_hmatrix(hmatrix_2d, tmp_path / "hmat.npz")
        H2 = load_hmatrix(path)
        assert H2.metadata.get("bacc") == hmatrix_2d.metadata.get("bacc")

    def test_no_pickle_in_file(self, hmatrix_2d, tmp_path):
        """Files must load with allow_pickle=False (safe to share)."""
        path = save_hmatrix(hmatrix_2d, tmp_path / "hmat.npz")
        with np.load(path, allow_pickle=False) as data:
            assert "manifest" in data.files


class TestInspectionP1Roundtrip:
    def test_roundtrip_reusable_for_p2(self, p1_2d, inspector_small,
                                       gaussian_kernel, tmp_path):
        path = save_inspection_p1(p1_2d, tmp_path / "p1.npz")
        p1b = load_inspection_p1(path)
        H_a = inspector_small.run_p2(p1_2d, gaussian_kernel)
        H_b = inspector_small.run_p2(p1b, gaussian_kernel)
        rng = np.random.default_rng(1)
        W = rng.random((H_a.dim, 3))
        np.testing.assert_allclose(H_a.matmul(W), H_b.matmul(W), atol=1e-10)

    def test_sampling_plan_identical(self, p1_2d, tmp_path):
        path = save_inspection_p1(p1_2d, tmp_path / "p1.npz")
        p1b = load_inspection_p1(path)
        for v in range(p1_2d.tree.num_nodes):
            np.testing.assert_array_equal(p1b.plan.for_node(v),
                                          p1_2d.plan.for_node(v))
        assert p1b.plan.k == p1_2d.plan.k
        assert p1b.plan.method == p1_2d.plan.method

    def test_blocksets_identical(self, p1_2d, tmp_path):
        path = save_inspection_p1(p1_2d, tmp_path / "p1.npz")
        p1b = load_inspection_p1(path)
        assert p1b.near_blockset.blocks == p1_2d.near_blockset.blocks
        assert p1b.far_blockset.blocks == p1_2d.far_blockset.blocks

    def test_htree_identical(self, p1_2d, tmp_path):
        path = save_inspection_p1(p1_2d, tmp_path / "p1.npz")
        p1b = load_inspection_p1(path)
        assert p1b.htree.near == p1_2d.htree.near
        assert p1b.htree.far == p1_2d.htree.far
        assert p1b.htree.structure == p1_2d.htree.structure


class TestRoundtripAcrossStructuresAndDtypes:
    """Every admissibility flavour and input dtype must round-trip."""

    @pytest.mark.parametrize("structure", ["hss", "h2-geometric", "h2-b"])
    def test_structure_roundtrip_product_identical(self, points_2d,
                                                   gaussian_kernel,
                                                   structure, tmp_path):
        insp = Inspector(structure=structure, tau=0.65, budget=0.03,
                         bacc=1e-5, leaf_size=32, p=4, seed=0)
        H = insp.run(points_2d, gaussian_kernel)
        H2 = load_hmatrix(save_hmatrix(H, tmp_path / "h.npz"))
        assert H2.factors.htree.structure == H.factors.htree.structure
        W = np.random.default_rng(0).random((H.dim, 4))
        np.testing.assert_array_equal(H.matmul(W), H2.matmul(W))

    @pytest.mark.parametrize("structure", ["hss", "h2-geometric", "h2-b"])
    def test_structure_p1_roundtrip(self, points_2d, gaussian_kernel,
                                    structure, tmp_path):
        insp = Inspector(structure=structure, tau=0.65, budget=0.03,
                         bacc=1e-5, leaf_size=32, p=4, seed=0)
        p1 = insp.run_p1(points_2d)
        p1b = load_inspection_p1(save_inspection_p1(p1, tmp_path / "p.npz"))
        H_a = insp.run_p2(p1, gaussian_kernel)
        H_b = insp.run_p2(p1b, gaussian_kernel)
        W = np.random.default_rng(1).random((H_a.dim, 3))
        np.testing.assert_allclose(H_a.matmul(W), H_b.matmul(W), atol=1e-10)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_input_dtype_roundtrip(self, gaussian_kernel, dtype, tmp_path):
        pts = np.random.default_rng(5).random((300, 2)).astype(dtype)
        insp = Inspector(leaf_size=32, bacc=1e-5, p=4, seed=0)
        H = insp.run(pts, gaussian_kernel)
        H2 = load_hmatrix(save_hmatrix(H, tmp_path / "h.npz"))
        np.testing.assert_array_equal(H2.cds.basis_buf, H.cds.basis_buf)
        W = np.random.default_rng(6).random((H.dim, 2))
        np.testing.assert_array_equal(H.matmul(W), H2.matmul(W))


class TestCorruptedArtifactsFailClosed:
    """Torn/garbage files raise PlanStoreError, never raw numpy/JSON."""

    def test_truncated_hmatrix_file(self, hmatrix_2d, tmp_path):
        path = save_hmatrix(hmatrix_2d, tmp_path / "h.npz")
        path.write_bytes(path.read_bytes()[:128])
        with pytest.raises(PlanStoreError, match="corrupted"):
            load_hmatrix(path)

    def test_truncated_p1_file(self, p1_2d, tmp_path):
        path = save_inspection_p1(p1_2d, tmp_path / "p1.npz")
        path.write_bytes(path.read_bytes()[:128])
        with pytest.raises(PlanStoreError, match="corrupted"):
            load_inspection_p1(path)

    def test_flipped_bytes_hmatrix_file(self, hmatrix_2d, tmp_path):
        path = save_hmatrix(hmatrix_2d, tmp_path / "h.npz")
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(PlanStoreError):
            load_hmatrix(path)

    def test_not_a_zipfile(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(PlanStoreError, match="corrupted"):
            load_hmatrix(path)
        with pytest.raises(PlanStoreError, match="corrupted"):
            load_inspection_p1(path)

    def test_missing_files(self, tmp_path):
        with pytest.raises(PlanStoreError, match="does not exist"):
            load_hmatrix(tmp_path / "nope.npz")
        with pytest.raises(PlanStoreError, match="does not exist"):
            load_inspection_p1(tmp_path / "nope.npz")

    def test_wrong_artifact_kind_rejected(self, p1_2d, tmp_path):
        """Loading a p1 artifact as an HMatrix is a decode failure, not
        silent garbage."""
        path = save_inspection_p1(p1_2d, tmp_path / "p1.npz")
        with pytest.raises(PlanStoreError):
            load_hmatrix(path)

    def test_plan_store_error_is_runtime_error(self):
        assert issubclass(PlanStoreError, RuntimeError)
