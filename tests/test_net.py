"""repro.net: wire protocol, auth, tenancy, quotas, and the live server.

The server tests run over a real loopback socket (ephemeral port) — the
acceptance bar for the network layer is end-to-end: results bit-identical
to an in-process Session, restart-warm from the tenant's store, and every
failure mode answered with the right status code while the dispatcher
stays alive.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro import PlanConfig, Session
from repro.kernels.gaussian import GaussianKernel
from repro.net import (
    AuthError,
    KernelClient,
    KernelServer,
    ProtocolError,
    QuotaExceeded,
    ServerError,
    TenantQuota,
    TokenAuthenticator,
    decode_array,
    encode_array,
)
from repro.net.protocol import kernel_from_doc, plan_from_doc
from repro.net.tenants import valid_tenant_name

PLAN = PlanConfig(leaf_size=32, bacc=1e-6, p=4, seed=0)
PLAN_DOC = {"leaf_size": 32, "bacc": 1e-6, "p": 4, "seed": 0}
KERNEL_DOC = {"name": "gaussian", "bandwidth": 0.5}
TOKENS = {"tok-a": "alice", "tok-b": "bob"}


def _client(server, tenant="alice", token="tok-a", **kw) -> KernelClient:
    return KernelClient(server.url, tenant=tenant, token=token, **kw)


@pytest.fixture()
def server(tmp_path):
    with KernelServer(tmp_path / "root", tokens=TOKENS,
                      max_wait_ms=5.0) as srv:
        yield srv


@pytest.fixture(scope="module")
def reference(points_2d):
    """In-process ground truth: H and Y for the shared point set."""
    with Session(plan=PLAN) as session:
        H = session.inspect(points_2d, kernel=GaussianKernel(bandwidth=0.5))
        W = np.random.default_rng(42).random((len(points_2d), 6))
        return {"W": W, "Y": session.matmul(H, W)}


# ---------------------------------------------------------------- protocol
class TestProtocol:
    @pytest.mark.parametrize("arr", [
        np.random.default_rng(0).random((7, 3)),
        np.random.default_rng(1).random(11),
        np.arange(6, dtype=np.float32).reshape(2, 3),
        np.array([[np.inf, -np.inf, np.nan]]),  # data, not protocol
    ])
    def test_array_round_trip_exact(self, arr):
        out = decode_array(encode_array(arr))
        assert out.dtype == arr.dtype
        np.testing.assert_array_equal(out, arr)

    def test_non_wire_dtype_upcast_on_encode(self):
        doc = encode_array(np.arange(4, dtype=np.int32))
        assert doc["dtype"] == "float64"
        np.testing.assert_array_equal(decode_array(doc),
                                      np.arange(4, dtype=np.float64))

    @pytest.mark.parametrize("mutate, match", [
        (lambda d: d.update(data="!!!not-base64!!!"), "base64"),
        (lambda d: d.update(shape=[3, 999]), "bytes"),
        (lambda d: d.update(shape="nope"), "shape"),
        (lambda d: d.update(shape=[-1, 4]), "shape"),
        (lambda d: d.update(dtype="object"), "dtype"),
        (lambda d: d.pop("data"), "base64 string"),
    ])
    def test_decode_rejects_malformed(self, mutate, match):
        doc = encode_array(np.ones((3, 4)))
        mutate(doc)
        with pytest.raises(ProtocolError, match=match):
            decode_array(doc)

    def test_decode_rejects_non_dict(self):
        with pytest.raises(ProtocolError, match="must be an object"):
            decode_array([1, 2, 3])

    def test_element_cap_is_413(self):
        doc = encode_array(np.ones((10, 10)))
        with pytest.raises(ProtocolError) as err:
            decode_array(doc, max_elements=99)
        assert err.value.status == 413

    def test_plan_from_doc(self):
        assert plan_from_doc(None) == PlanConfig()
        assert plan_from_doc(PLAN_DOC).fingerprint() == PLAN.fingerprint()
        with pytest.raises(ProtocolError, match="unknown key"):
            plan_from_doc({"leaf_sizes": 32})
        with pytest.raises(ProtocolError, match="finite"):
            plan_from_doc({"tau": float("nan")})
        with pytest.raises(ProtocolError, match="invalid plan"):
            plan_from_doc({"leaf_size": -5})

    def test_kernel_from_doc(self):
        assert kernel_from_doc("gaussian") == kernel_from_doc(
            {"name": "gaussian", "bandwidth": 5.0})
        assert kernel_from_doc(KERNEL_DOC).identity() == \
            GaussianKernel(bandwidth=0.5).identity()
        with pytest.raises(ProtocolError, match="unknown kernel"):
            kernel_from_doc("not-a-kernel")
        with pytest.raises(ProtocolError, match="bandwidth"):
            kernel_from_doc({"name": "gaussian", "bandwidth": -1})
        with pytest.raises(ProtocolError, match="unknown key"):
            kernel_from_doc({"name": "gaussian", "sigma": 2})


# -------------------------------------------------------------------- auth
class TestAuth:
    def test_resolve_and_authenticate(self):
        auth = TokenAuthenticator(TOKENS)
        assert auth.resolve("Bearer tok-a") == "alice"
        assert auth.authenticate("Bearer tok-b", "bob") == "bob"
        assert auth.tenants() == ["alice", "bob"]

    @pytest.mark.parametrize("header", [None, "", "Bearer ", "Basic xyz",
                                        "Bearer nope", "tok-a"])
    def test_bad_credentials_are_401(self, header):
        with pytest.raises(AuthError) as err:
            TokenAuthenticator(TOKENS).resolve(header)
        assert err.value.status == 401

    def test_wrong_tenant_is_403(self):
        with pytest.raises(AuthError) as err:
            TokenAuthenticator(TOKENS).authenticate("Bearer tok-a", "bob")
        assert err.value.status == 403

    def test_token_table_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            TokenAuthenticator({"": "alice"})
        with pytest.raises(ValueError, match="tenant"):
            TokenAuthenticator({"tok": 7})

    def test_token_file_round_trip(self, tmp_path):
        path = tmp_path / "tokens.json"
        path.write_text(json.dumps({"tokens": TOKENS}))
        assert TokenAuthenticator(path).resolve("Bearer tok-b") == "bob"
        path.write_text(json.dumps({"nope": 1}))
        with pytest.raises(ValueError, match="tokens"):
            TokenAuthenticator(path)


# ------------------------------------------------------------------ quotas
class TestQuota:
    def test_request_window_slides(self):
        from repro.net.tenants import TenantRegistry

        reg = TenantRegistry("/nonexistent-is-fine-not-created-yet")
        # Use a real tenant dir only when needed; here exercise the
        # window math directly on a Tenant with an in-memory-ish root.
        assert reg.quota.enabled is False

    def test_charge_and_expiry(self, tmp_path):
        from repro.net.tenants import Tenant

        quota = TenantQuota(max_requests=2, max_bytes=100,
                            window_seconds=10.0)
        t = Tenant("t", tmp_path / "t", quota=quota, service_kwargs={})
        try:
            t.charge(10, now=0.0)
            t.charge(20, now=1.0)
            with pytest.raises(QuotaExceeded) as err:
                t.charge(1, now=2.0)
            assert err.value.retry_after == pytest.approx(8.0)
            # window slides: the t=0 charge expires at t=10
            t.charge(30, now=10.5)
            # at t=11.5 only (10.5, 30) is left in the window, so the
            # request count is fine but 30 + 99 > 100 bytes
            with pytest.raises(QuotaExceeded) as err:
                t.charge(99, now=11.5)
            assert "byte quota" in str(err.value)
            stats = t.stats()["quota"]
            assert stats["requests_total"] == 3
            assert stats["rejected_total"] == 2
            assert stats["bytes_total"] == 60
        finally:
            t.service.close()

    def test_quota_validation(self):
        with pytest.raises(ValueError):
            TenantQuota(max_requests=0)
        with pytest.raises(ValueError):
            TenantQuota(max_bytes=-1)
        with pytest.raises(ValueError):
            TenantQuota(window_seconds=0)

    @pytest.mark.parametrize("name, ok", [
        ("alice", True), ("a-b_c.d", True), ("A0", True),
        ("", False), ("..", False), ("a/../b", False), ("a/b", False),
        (".hidden", False), ("x" * 65, False), (7, False),
    ])
    def test_tenant_name_validation(self, name, ok):
        assert valid_tenant_name(name) is ok


# ------------------------------------------------------- live server (e2e)
class TestServerEndToEnd:
    def test_compile_then_matmul_bit_identical(self, server, points_2d,
                                               reference):
        client = _client(server)
        info = client.compile(points_2d, kernel=KERNEL_DOC, plan=PLAN_DOC,
                              points_id="grid")
        assert info["points_id"] == "grid"
        assert info["compiled"] is True
        assert info["plan_fingerprint"] == PLAN.fingerprint()
        Y = client.matmul("grid", reference["W"])
        np.testing.assert_array_equal(Y, reference["Y"])  # bit-identical

    def test_chunk_streamed_matmul_bit_identical(self, server, points_2d,
                                                 reference):
        client = _client(server)
        client.compile(points_2d, kernel=KERNEL_DOC, plan=PLAN_DOC,
                       points_id="grid")
        Y = client.matmul("grid", reference["W"], chunk_cols=2)
        np.testing.assert_array_equal(Y, reference["Y"])
        # chunks really went through the dispatcher as separate submits
        stats = client.stats()
        assert stats["service"]["served"] >= 3

    def test_vector_request_round_trip(self, server, points_2d):
        client = _client(server)
        client.compile(points_2d, kernel=KERNEL_DOC, plan=PLAN_DOC,
                       points_id="grid")
        w = np.random.default_rng(3).random(len(points_2d))
        y = client.matmul("grid", w)
        assert y.shape == (len(points_2d),)

    def test_tenant_isolation_identical_points(self, server, points_2d):
        """Two tenants, identical points: separate store roots, no
        cross-tenant artifact hits (counter-asserted)."""
        a, b = _client(server), _client(server, "bob", "tok-b")
        ia = a.compile(points_2d, kernel=KERNEL_DOC, plan=PLAN_DOC)
        ib = b.compile(points_2d, kernel=KERNEL_DOC, plan=PLAN_DOC)
        assert ia["points_fingerprint"] == ib["points_fingerprint"]
        # both tenants really compiled: neither was served from the
        # other's store even though the artifacts are byte-equivalent
        assert ia["compiled"] is True
        assert ib["compiled"] is True
        sa, sb = a.stats(), b.stats()
        assert sa["store_root"] != sb["store_root"]
        for s in (sa, sb):
            assert s["session"]["p1_builds"] == 1
            assert s["session"]["p2_builds"] == 1
            assert s["session"]["hmatrix_hits"] == 0
            assert s["store"]["disk_hits"] == 0
        roots = server.root / "tenants"
        assert (roots / "alice" / "store").is_dir()
        assert (roots / "bob" / "store").is_dir()
        alice_artifacts = set(
            p.name for p in (roots / "alice" / "store").glob("*.npz"))
        bob_artifacts = set(
            p.name for p in (roots / "bob" / "store").glob("*.npz"))
        assert alice_artifacts and bob_artifacts

    def test_missing_token_401(self, server, points_2d):
        with pytest.raises(ServerError) as err:
            _client(server, token=None).stats()
        assert (err.value.status, err.value.code) == (401,
                                                      "unauthenticated")

    def test_unknown_token_401(self, server):
        with pytest.raises(ServerError) as err:
            _client(server, token="wrong").stats()
        assert err.value.status == 401

    def test_cross_tenant_token_403(self, server):
        with pytest.raises(ServerError) as err:
            _client(server, tenant="bob", token="tok-a").stats()
        assert (err.value.status, err.value.code) == (403, "forbidden")

    def test_invalid_tenant_name_400(self, server):
        auth_free = KernelServer(server.root.parent / "open", tokens=None)
        with auth_free:
            with pytest.raises(ServerError) as err:
                KernelClient(auth_free.url, tenant="a%2e%2e").stats()
            assert err.value.status == 400

    def test_over_quota_429_with_retry_after(self, tmp_path, points_2d):
        quota = TenantQuota(max_requests=2, window_seconds=60.0)
        with KernelServer(tmp_path / "q", tokens=TOKENS,
                          quota=quota) as srv:
            client = _client(srv)
            client.compile(points_2d, kernel=KERNEL_DOC, plan=PLAN_DOC,
                           points_id="grid")
            client.matmul("grid", np.ones(len(points_2d)))
            with pytest.raises(ServerError) as err:
                client.matmul("grid", np.ones(len(points_2d)))
            assert (err.value.status, err.value.code) == (429, "over_quota")
            assert err.value.retry_after is not None
            assert err.value.retry_after > 0
            # the rejected request was not charged; stats still served
            assert client.stats()["quota"]["rejected_total"] == 1

    def test_malformed_json_400_dispatcher_survives(self, server,
                                                    points_2d):
        import urllib.error
        import urllib.request

        client = _client(server)
        client.compile(points_2d, kernel=KERNEL_DOC, plan=PLAN_DOC,
                       points_id="grid")
        request = urllib.request.Request(
            f"{server.url}/v1/alice/matmul",
            data=b'{"points_id": "grid", "w": {{{nope',
            method="POST",
            headers={"Authorization": "Bearer tok-a",
                     "Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30)
        assert err.value.code == 400
        body = json.loads(err.value.read())
        assert body["error"]["code"] == "bad_request"
        # the dispatcher never saw the malformed body: still alive and
        # still serving
        stats = client.stats()
        assert stats["service"]["dispatcher_alive"] is True
        Y = client.matmul("grid", np.ones(len(points_2d)))
        assert Y.shape == (len(points_2d),)

    @pytest.mark.parametrize("body, status, code", [
        ({"w": "no-points-id"}, 400, "bad_request"),
        ({"points_id": "ghost",
          "w": {"shape": [2], "dtype": "float64",
                "data": "AAAAAAAA8D8AAAAAAADwPw=="}},
         404, "unknown_points_id"),
        ({"points_id": "grid", "w": {"shape": [3], "dtype": "float64",
                                     "data": "AAAAAAAA8D8AAAAAAADwPwAAAAA"
                                             "AAPA/"}},
         400, "bad_request"),  # wrong row count
        ({"points_id": "grid"}, 400, "bad_request"),  # neither w form
    ])
    def test_matmul_error_codes(self, server, points_2d, body, status,
                                code):
        client = _client(server)
        client.compile(points_2d, kernel=KERNEL_DOC, plan=PLAN_DOC,
                       points_id="grid")
        with pytest.raises(ServerError) as err:
            client._request("POST", "/v1/alice/matmul", body)
        assert (err.value.status, err.value.code) == (status, code)

    def test_unknown_route_404_and_wrong_method_405(self, server):
        client = _client(server)
        with pytest.raises(ServerError) as err:
            client._request("GET", "/v1/alice/nothing")
        assert err.value.status == 404
        with pytest.raises(ServerError) as err:
            client._request("GET", "/v1/alice/matmul")
        assert err.value.status == 405

    def test_oversized_body_413(self, tmp_path, points_2d):
        with KernelServer(tmp_path / "small", tokens=TOKENS,
                          max_body_bytes=1000) as srv:
            with pytest.raises(ServerError) as err:
                _client(srv).compile(points_2d, kernel=KERNEL_DOC)
            assert err.value.status == 413

    def test_metrics_and_health(self, server, points_2d):
        client = _client(server)
        client.compile(points_2d, kernel=KERNEL_DOC, plan=PLAN_DOC,
                       points_id="grid")
        client.matmul("grid", np.ones(len(points_2d)))
        assert client.health() == {"status": "ok"}
        text = client.metrics()
        assert "repro_net_tenants_alice_service_served 1" in text
        assert "repro_net_server_responses_2xx" in text

    def test_metrics_requires_token_when_auth_on(self, server):
        with pytest.raises(ServerError) as err:
            KernelClient(server.url).metrics()
        assert err.value.status == 401
        # health stays anonymous: load balancers carry no tokens
        assert KernelClient(server.url).health() == {"status": "ok"}

    def test_metrics_scoped_to_tenant_token(self, server, points_2d):
        a, b = _client(server), _client(server, "bob", "tok-b")
        a.compile(points_2d, kernel=KERNEL_DOC, plan=PLAN_DOC)
        b.compile(points_2d, kernel=KERNEL_DOC, plan=PLAN_DOC)
        text = a.metrics()
        assert "repro_net_tenants_alice_" in text
        assert "repro_net_server_responses_2xx" in text
        # bob's name, endpoints, and counters must not leak to alice
        assert "bob" not in text

    def test_metrics_scrape_token_sees_all_tenants(self, tmp_path,
                                                   points_2d):
        with KernelServer(tmp_path / "m", tokens=TOKENS,
                          metrics_token="scrape-tok") as srv:
            _client(srv).compile(points_2d, kernel=KERNEL_DOC,
                                 plan=PLAN_DOC)
            _client(srv, "bob", "tok-b").compile(points_2d,
                                                 kernel=KERNEL_DOC,
                                                 plan=PLAN_DOC)
            text = KernelClient(srv.url, token="scrape-tok").metrics()
            assert "repro_net_tenants_alice_" in text
            assert "repro_net_tenants_bob_" in text
            # the scrape token is not a tenant token: no data-plane access
            with pytest.raises(ServerError) as err:
                KernelClient(srv.url, tenant="alice",
                             token="scrape-tok").stats()
            assert err.value.status == 401

    def test_drain_503_but_observable(self, server, points_2d):
        client = _client(server)
        client.compile(points_2d, kernel=KERNEL_DOC, plan=PLAN_DOC,
                       points_id="grid")
        assert server.drain(timeout=30) is True
        assert client.health() == {"status": "draining"}
        with pytest.raises(ServerError) as err:
            client.matmul("grid", np.ones(len(points_2d)))
        assert (err.value.status, err.value.code) == (503, "draining")
        with pytest.raises(ServerError) as err:
            client.compile(points_2d, kernel=KERNEL_DOC)
        assert err.value.status == 503
        # read-only endpoints keep working so the drain is observable
        assert client.stats()["service"]["draining"] is True
        assert "repro_net_server_draining 1" in client.metrics()

    def test_audit_log_records_requests(self, server, points_2d):
        client = _client(server)
        client.compile(points_2d, kernel=KERNEL_DOC, plan=PLAN_DOC,
                       points_id="grid")
        client.matmul("grid", np.ones(len(points_2d)))
        with pytest.raises(ServerError):
            _client(server, token="wrong").stats()
        # the audit line lands *after* the response bytes (best-effort
        # log, written in the handler's finally) — poll briefly
        deadline = time.monotonic() + 5.0
        by_verb = {}
        while time.monotonic() < deadline and len(by_verb) < 3:
            lines = [json.loads(line) for line in
                     (server.root / "audit.jsonl").read_text().splitlines()]
            by_verb = {rec["verb"]: rec for rec in lines}
        assert by_verb["compile"]["status"] == 200
        assert by_verb["compile"]["tenant"] == "alice"
        assert by_verb["compile"]["detail"] == "grid"
        assert by_verb["compile"]["bytes_in"] > 0
        assert by_verb["matmul"]["status"] == 200
        assert by_verb["matmul"]["duration_ms"] >= 0
        assert by_verb["stats"]["status"] == 401
        assert by_verb["stats"]["tenant"] is None  # failed auth first


class TestConnectionHygiene:
    """Wire-level behaviour urllib hides: raw sockets, keep-alive."""

    def test_negative_content_length_400(self, server):
        import http.client

        conn = http.client.HTTPConnection(server.host, server.port,
                                          timeout=30)
        try:
            conn.putrequest("POST", "/v1/alice/compile")
            conn.putheader("Authorization", "Bearer tok-a")
            conn.putheader("Content-Length", "-1")
            conn.endheaders()
            resp = conn.getresponse()
            assert resp.status == 400
            body = json.loads(resp.read())
            assert body["error"]["code"] == "bad_request"
            assert "non-negative" in body["error"]["message"]
        finally:
            conn.close()

    def test_error_before_body_read_closes_connection(self, server):
        import http.client

        conn = http.client.HTTPConnection(server.host, server.port,
                                          timeout=30)
        try:
            # 401 is decided from the headers alone: the body is never
            # read, so HTTP/1.1 keep-alive would leave it on the socket
            # to be parsed as the next request line.
            conn.request("POST", "/v1/alice/matmul", body=b"x" * 64,
                         headers={"Authorization": "Bearer wrong",
                                  "Content-Type": "application/json"})
            resp = conn.getresponse()
            assert resp.status == 401
            assert resp.getheader("Connection") == "close"
            resp.read()
        finally:
            conn.close()

    def test_keep_alive_survives_post_body_errors(self, server, points_2d):
        import http.client

        _client(server).compile(points_2d, kernel=KERNEL_DOC,
                                plan=PLAN_DOC, points_id="grid")
        w_doc = encode_array(np.ones(len(points_2d)))
        headers = {"Authorization": "Bearer tok-a",
                   "Content-Type": "application/json"}
        conn = http.client.HTTPConnection(server.host, server.port,
                                          timeout=30)
        try:
            # First request 404s AFTER its body was consumed — the
            # connection must stay clean for the next request.
            conn.request("POST", "/v1/alice/matmul",
                         body=json.dumps({"points_id": "ghost",
                                          "w": w_doc}).encode(),
                         headers=headers)
            resp = conn.getresponse()
            assert resp.status == 404
            assert resp.getheader("Connection") != "close"
            resp.read()
            conn.request("POST", "/v1/alice/matmul",
                         body=json.dumps({"points_id": "grid",
                                          "w": w_doc}).encode(),
                         headers=headers)
            resp = conn.getresponse()
            assert resp.status == 200
            out = json.loads(resp.read())
            assert decode_array(out["y"]).shape == (len(points_2d),)
        finally:
            conn.close()

    def test_close_without_start_does_not_deadlock(self, tmp_path):
        import threading

        srv = KernelServer(tmp_path / "never-started", tokens=TOKENS)
        closer = threading.Thread(target=srv.close, daemon=True)
        closer.start()
        closer.join(10.0)
        assert not closer.is_alive()  # shutdown() must not block forever


class TestWarmRestart:
    def test_restart_serves_warm_with_zero_inspections(self, tmp_path,
                                                       points_2d,
                                                       reference):
        """The acceptance criterion: restart the server against the same
        tenant store root — the second run must prove zero inspections
        and zero re-tunes, with bit-identical results."""
        root = tmp_path / "root"
        with KernelServer(root, tokens=TOKENS) as srv:
            client = _client(srv)
            info = client.compile(points_2d, kernel=KERNEL_DOC,
                                  plan=PLAN_DOC, points_id="grid")
            assert info["compiled"] is True
            Y_cold = client.matmul("grid", reference["W"])
        # fresh process-equivalent: a brand-new server over the same root
        with KernelServer(root, tokens=TOKENS) as srv:
            client = _client(srv)
            info = client.compile(points_2d, kernel=KERNEL_DOC,
                                  plan=PLAN_DOC, points_id="grid")
            assert info["compiled"] is False  # served from the store
            Y_warm = client.matmul("grid", reference["W"])
            stats = client.stats()
            assert stats["session"]["p1_builds"] == 0
            assert stats["session"]["p2_builds"] == 0
            assert stats["store"]["disk_hits"] >= 1
            assert stats["autotune"].get("tunes", 0) == 0
        np.testing.assert_array_equal(Y_cold, reference["Y"])
        np.testing.assert_array_equal(Y_warm, reference["Y"])

    def test_close_writes_tenant_run_manifest(self, tmp_path, points_2d):
        from repro.observability import validate_run_manifest

        root = tmp_path / "root"
        with KernelServer(root, tokens=TOKENS) as srv:
            client = _client(srv)
            client.compile(points_2d, kernel=KERNEL_DOC, plan=PLAN_DOC,
                           points_id="grid")
            client.matmul("grid", np.ones(len(points_2d)))
        manifests = list(
            (root / "tenants" / "alice" / "store" / "manifests")
            .glob("run-*.json"))
        assert len(manifests) == 1
        doc = json.loads(manifests[0].read_text())
        assert validate_run_manifest(doc) == []
        assert doc["stats"]["service"]["served"] == 1


class TestCliIntegration:
    def test_stats_tenant_scoping(self, tmp_path, points_2d, capsys):
        from repro.cli import main

        root = tmp_path / "root"
        with KernelServer(root, tokens=TOKENS) as srv:
            _client(srv).compile(points_2d, kernel=KERNEL_DOC,
                                 plan=PLAN_DOC, points_id="grid")
        assert main(["stats", "--store", str(root),
                     "--tenant", "alice"]) == 0
        out = capsys.readouterr().out
        assert "repro_store_entries 2" in out  # p1 + hmatrix artifacts
        assert main(["stats", "--store", str(root), "--tenant", "alice",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["tenant"] == "alice"
        assert doc["entries"] == 2
        # unknown tenant: exit 2 and name the known ones
        assert main(["stats", "--store", str(root),
                     "--tenant", "ghost"]) == 2
        assert "alice" in capsys.readouterr().err
