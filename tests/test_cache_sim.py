"""Unit tests for the cache/TLB simulator and AMAL computation."""

import numpy as np
import pytest

from repro.runtime import HASWELL, KNL, CacheHierarchy, simulate_trace
from repro.runtime.cache import CacheLevel, TLB
from repro.runtime.latency import (
    average_memory_access_latency,
    ideal_latency,
    locality_factor,
)
from repro.runtime.machine import CacheSpec, MachineModel


def tiny_machine(l1_lines: int = 8, ways: int = 2) -> MachineModel:
    from dataclasses import replace

    return replace(
        HASWELL,
        caches=(
            CacheSpec("L1", l1_lines * 64, ways, 64, hit_cycles=4.0),
            CacheSpec("L2", 4 * l1_lines * 64, ways, 64, hit_cycles=12.0),
        ),
        tlb_entries=4,
    )


class TestCacheLevel:
    def test_repeated_access_hits(self):
        lvl = CacheLevel(CacheSpec("L1", 64 * 64, 8))
        lvl.access(5)
        assert lvl.access(5)
        assert lvl.hits == 1 and lvl.misses == 1

    def test_lru_eviction(self):
        # 1 set x 2 ways: third distinct line evicts the least recent.
        lvl = CacheLevel(CacheSpec("L1", 2 * 64, 2))
        lvl.access(0)
        lvl.access(1)
        lvl.access(0)   # 0 now most recent
        lvl.access(2)   # evicts 1
        assert lvl.access(0)
        assert not lvl.access(1)

    def test_set_mapping(self):
        # 2 sets: even lines -> set 0, odd -> set 1 (no interference).
        lvl = CacheLevel(CacheSpec("L1", 4 * 64, 2))
        assert lvl.num_sets == 2
        for a in (0, 2, 1, 3):
            lvl.access(a)
        assert lvl.access(0) and lvl.access(1)

    def test_insert_does_not_count(self):
        lvl = CacheLevel(CacheSpec("L1", 8 * 64, 8))
        lvl.insert(7)
        assert lvl.accesses == 0
        assert lvl.access(7)  # prefetched line hits


class TestTLB:
    def test_same_page_hits(self):
        tlb = TLB(entries=4, page_bytes=4096)
        tlb.access(0)
        assert tlb.access(4095)
        assert not tlb.access(4096)

    def test_capacity_eviction(self):
        tlb = TLB(entries=2, page_bytes=4096)
        for page in (0, 1, 2):
            tlb.access(page * 4096)
        assert not tlb.access(0)  # evicted


class TestHierarchy:
    def test_sequential_stream_mostly_hits_with_prefetch(self):
        m = tiny_machine()
        h = CacheHierarchy(m, prefetch=True)
        c = h.run(np.arange(1000))
        assert c.miss_ratio("L1") < 0.05

    def test_no_prefetch_stream_all_misses(self):
        m = tiny_machine()
        h = CacheHierarchy(m, prefetch=False)
        c = h.run(np.arange(1000))
        assert c.miss_ratio("L1") == 1.0

    def test_prefetch_stops_at_page_boundary(self):
        m = tiny_machine()
        h = CacheHierarchy(m, prefetch=True)
        # Lines 63 -> 64 cross the 4KB page (64 lines/page).
        h.access_line(63)
        l1 = h.levels[0]
        before = l1.misses
        h.access_line(64)
        assert l1.misses == before + 1  # not prefetched

    def test_random_trace_worse_than_sequential(self):
        m = tiny_machine()
        rng = np.random.default_rng(0)
        seq = np.arange(4000)
        rand = rng.integers(0, 100_000, size=4000)
        c_seq = simulate_trace(seq, m)
        c_rand = simulate_trace(rand, m)
        assert c_rand.miss_ratio("L1") > c_seq.miss_ratio("L1")
        assert locality_factor(c_rand, m) > locality_factor(c_seq, m)

    def test_counters_consistent(self):
        m = tiny_machine()
        c = simulate_trace(np.arange(500), m)
        assert c.accesses == 500
        assert c.level_hits["L1"] + c.level_misses["L1"] == 500


class TestAMAL:
    def test_all_hit_gives_ideal(self):
        m = tiny_machine()
        h = CacheHierarchy(m)
        # Long run so the single cold miss amortises away.
        h.run(np.zeros(10_000, dtype=np.int64))
        c = h.counters()
        amal = average_memory_access_latency(c, m)
        assert amal == pytest.approx(ideal_latency(m), rel=0.05)

    def test_empty_counters(self):
        m = tiny_machine()
        c = CacheHierarchy(m).counters()
        assert average_memory_access_latency(c, m) == m.caches[0].hit_cycles

    def test_locality_factor_at_least_one(self):
        m = tiny_machine()
        c = simulate_trace(np.arange(2000), m)
        assert locality_factor(c, m) >= 1.0

    def test_worse_misses_higher_amal(self):
        m = tiny_machine()
        rng = np.random.default_rng(1)
        good = simulate_trace(np.arange(3000), m)
        bad = simulate_trace(rng.integers(0, 10**6, 3000), m)
        assert average_memory_access_latency(bad, m) > (
            average_memory_access_latency(good, m)
        )


class TestMachineModels:
    def test_peak_flops(self):
        assert HASWELL.peak_gflops == pytest.approx(12 * 2.5 * 16)
        assert KNL.peak_gflops == pytest.approx(68 * 1.4 * 32)

    def test_flop_seconds_scales_with_cores(self):
        t1 = HASWELL.flop_seconds(1e9, cores=1)
        t12 = HASWELL.flop_seconds(1e9, cores=12)
        assert t1 == pytest.approx(12 * t12)

    def test_mem_seconds_bandwidth_saturation(self):
        t1 = HASWELL.mem_seconds(1e9, active_cores=1)
        t12 = HASWELL.mem_seconds(1e9, active_cores=12)
        assert t12 > t1  # per-core share shrinks when 12 cores compete

    def test_barrier_grows_with_cores(self):
        assert KNL.barrier_seconds(68) > KNL.barrier_seconds(2)

    def test_scaled_caches(self):
        m = HASWELL.scaled_caches(0.01)
        assert m.caches[0].size_bytes < HASWELL.caches[0].size_bytes
        assert m.caches[0].size_bytes >= m.caches[0].line_bytes * m.caches[0].ways
        assert m.num_cores == HASWELL.num_cores  # untouched
        with pytest.raises(ValueError):
            HASWELL.scaled_caches(0.0)
