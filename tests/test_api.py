"""Tests for the public API layer: PlanConfig, ExecutionPolicy,
KernelOperator composition, Session caching, and shim equivalence."""

import numpy as np
import pytest

from repro import (
    DEFAULT_POLICY,
    ExecutionPolicy,
    IdentityOperator,
    KernelOperator,
    PlanConfig,
    Session,
    aslinearoperator,
    inspector,
    load_operator,
    matmul,
    matmul_many,
    save_hmatrix,
)
from repro.api.operator import DenseOperator, as_apply
from repro.api.policy import resolve_policy
from repro.api.session import points_fingerprint
from repro.core.inspector import INSPECTION_COUNTS
from repro.solvers import (
    KernelRidgeRegression,
    conjugate_gradient,
    estimate_trace,
    power_iteration,
)

PLAN_32 = PlanConfig(leaf_size=32, bacc=1e-6, p=4)


@pytest.fixture(scope="module")
def operator_2d(points_2d, gaussian_kernel):
    return KernelOperator.from_points(
        points_2d, kernel=gaussian_kernel, plan=PLAN_32).materialize()


@pytest.fixture(scope="module")
def dense_2d(operator_2d):
    return operator_2d.dense()


class TestPlanConfig:
    def test_defaults_match_paper(self):
        plan = PlanConfig()
        assert plan.structure == "h2-geometric"
        assert plan.tau == 0.65 and plan.bacc == 1e-5
        assert plan.leaf_size == 64 and plan.sampling_size == 32

    @pytest.mark.parametrize("bad", [
        {"structure": "h3"},
        {"tau": 0.0},
        {"tau": 1.5},
        {"budget": -0.1},
        {"bacc": 0.0},
        {"leaf_size": 0},
        {"sampling_size": -1},
        {"tree_method": "octree"},
        {"coarsen_threshold": -1},
        {"block_threshold": -2},
    ])
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(ValueError):
            PlanConfig(**bad)

    def test_unknown_kwarg_named_in_error(self):
        with pytest.raises(TypeError, match="leaf_sizee"):
            PlanConfig.from_kwargs(leaf_sizee=32)

    def test_hashable_and_replace(self):
        plan = PlanConfig(leaf_size=32)
        assert hash(plan) == hash(PlanConfig(leaf_size=32))
        assert plan.replace(bacc=1e-3).bacc == 1e-3
        with pytest.raises(ValueError):
            plan.replace(bacc=-1.0)

    def test_p1_fingerprint_ignores_phase2_knobs(self):
        a = PlanConfig(leaf_size=32, bacc=1e-5)
        b = PlanConfig(leaf_size=32, bacc=1e-3, max_rank=64)
        assert a.p1_fingerprint() == b.p1_fingerprint()
        assert a.fingerprint() != b.fingerprint()
        assert a.p1_fingerprint() != PlanConfig(leaf_size=64).p1_fingerprint()

    def test_to_inspector_runs_identically(self, points_2d, gaussian_kernel,
                                           inspector_small):
        plan = PlanConfig(structure="h2-geometric", tau=0.65, leaf_size=32,
                          bacc=1e-6, p=4, seed=0)
        H_new = plan.to_inspector().run(points_2d, gaussian_kernel)
        H_old = inspector_small.run(points_2d, gaussian_kernel)
        W = np.random.default_rng(2).random((len(points_2d), 3))
        np.testing.assert_array_equal(H_new.matmul(W), H_old.matmul(W))


class TestExecutionPolicy:
    def test_single_documented_default(self):
        assert DEFAULT_POLICY.order == "batched"
        assert DEFAULT_POLICY.num_threads is None
        assert DEFAULT_POLICY.q_chunk is None

    @pytest.mark.parametrize("bad", [
        {"order": "bfs"},
        {"num_threads": 0},
        {"q_chunk": 0},
    ])
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(ValueError):
            ExecutionPolicy(**bad)

    def test_resolution_precedence(self):
        pol = ExecutionPolicy(order="original", num_threads=2)
        merged = resolve_policy(pol, order="tree", q_chunk=64)
        assert merged.order == "tree"
        assert merged.num_threads == 2 and merged.q_chunk == 64
        assert resolve_policy(None).order == DEFAULT_POLICY.order

    def test_matmul_and_matmul_many_share_default(self, hmatrix_2d):
        """The satellite fix: both shims route through one default order."""
        W = np.random.default_rng(3).random((hmatrix_2d.dim, 8))
        np.testing.assert_array_equal(matmul(hmatrix_2d, W),
                                      matmul_many(hmatrix_2d, W))
        np.testing.assert_array_equal(
            matmul(hmatrix_2d, W),
            hmatrix_2d.matmul(W, order=DEFAULT_POLICY.order))

    def test_serial_executor_honors_per_call_threads(self, hmatrix_2d):
        W = np.random.default_rng(22).random((hmatrix_2d.dim, 4))
        from repro import Executor

        with Executor() as ex:      # pool-less executor
            pol = ExecutionPolicy(order="original", num_threads=3)
            np.testing.assert_allclose(
                ex.matmul(hmatrix_2d, W, policy=pol),
                hmatrix_2d.matmul(W, order="original"), atol=1e-12)

    def test_policy_travels_through_hmatrix_matmul(self, hmatrix_2d):
        W = np.random.default_rng(4).random((hmatrix_2d.dim, 4))
        pol = ExecutionPolicy(order="original", num_threads=2)
        np.testing.assert_allclose(hmatrix_2d.matmul(W, policy=pol),
                                   hmatrix_2d.matmul(W, order="original"),
                                   atol=1e-12)


class TestOperatorAlgebra:
    def test_matches_dense_reference(self, operator_2d, dense_2d):
        W = np.random.default_rng(5).random((operator_2d.shape[0], 6))
        np.testing.assert_allclose(operator_2d @ W, dense_2d @ W, atol=1e-12)

    def test_scaled_plus_identity_identity(self, operator_2d, dense_2d):
        """(a*K + b*I) @ W against the dense reference."""
        n = operator_2d.shape[0]
        a, b = 2.5, 0.75
        composed = a * operator_2d + b * IdentityOperator(n)
        W = np.random.default_rng(6).random((n, 5))
        ref = (a * dense_2d + b * np.eye(n)) @ W
        np.testing.assert_allclose(composed @ W, ref, atol=1e-10)

    def test_transpose_of_symmetric_operator(self, operator_2d, dense_2d):
        W = np.random.default_rng(7).random((operator_2d.shape[0], 4))
        np.testing.assert_allclose(operator_2d.T @ W, dense_2d.T @ W,
                                   atol=1e-10)

    def test_transpose_of_composition(self, operator_2d, dense_2d):
        n = operator_2d.shape[0]
        composed = (3.0 * operator_2d + 2.0 * IdentityOperator(n)).T
        W = np.random.default_rng(8).random(n)
        ref = (3.0 * dense_2d + 2.0 * np.eye(n)).T @ W
        np.testing.assert_allclose(composed @ W, ref, atol=1e-10)

    def test_shifted_subtract_negate(self, operator_2d, dense_2d):
        n = operator_2d.shape[0]
        W = np.random.default_rng(9).random((n, 2))
        np.testing.assert_allclose(operator_2d.shifted(0.5) @ W,
                                   dense_2d @ W + 0.5 * W, atol=1e-10)
        diff = operator_2d - operator_2d
        np.testing.assert_allclose(diff @ W, np.zeros_like(W), atol=1e-10)
        np.testing.assert_allclose((-operator_2d) @ W, -(dense_2d @ W),
                                   atol=1e-10)

    def test_vector_rhs_and_duck_typing(self, operator_2d, dense_2d):
        n = operator_2d.shape[0]
        v = np.random.default_rng(10).random(n)
        y = operator_2d.matvec(v)
        assert y.shape == (n,)
        np.testing.assert_allclose(y, dense_2d @ v, atol=1e-12)
        np.testing.assert_allclose(operator_2d.rmatvec(v), y, atol=1e-12)
        assert operator_2d.dtype == np.float64
        assert operator_2d.shape == (n, n)

    def test_shape_mismatch_raises(self, operator_2d):
        with pytest.raises(ValueError, match="rows"):
            operator_2d @ np.ones(operator_2d.shape[0] + 1)
        with pytest.raises(ValueError, match="shapes differ"):
            operator_2d + IdentityOperator(3)

    def test_aslinearoperator_coercions(self, hmatrix_2d):
        assert isinstance(aslinearoperator(hmatrix_2d), KernelOperator)
        op = aslinearoperator(np.eye(4))
        assert isinstance(op, DenseOperator)
        assert aslinearoperator(op) is op
        with pytest.raises(TypeError):
            aslinearoperator("not an operator")

    def test_as_apply_accepts_both_contracts(self, operator_2d):
        v = np.random.default_rng(11).random(operator_2d.shape[0])
        np.testing.assert_array_equal(as_apply(operator_2d)(v),
                                      operator_2d @ v)
        fn = as_apply(lambda w: 2 * w)
        np.testing.assert_array_equal(fn(v), 2 * v)
        with pytest.raises(TypeError):
            as_apply(3.0)

    def test_lazy_operator_defers_inspection(self, points_2d):
        before = INSPECTION_COUNTS["p1"]
        K = KernelOperator.from_points(points_2d, kernel="gaussian",
                                       plan=PLAN_32)
        assert not K.materialized
        assert INSPECTION_COUNTS["p1"] == before
        K @ np.ones(len(points_2d))
        assert K.materialized
        assert INSPECTION_COUNTS["p1"] == before + 1


class TestSession:
    def test_repeated_operator_skips_p1(self, points_2d):
        """The acceptance check: identical points+plan provably skip P1."""
        W = np.random.default_rng(12).random((len(points_2d), 3))
        with Session(plan=PLAN_32) as session:
            Y1 = session.operator(points_2d, kernel="gaussian") @ W
            before = INSPECTION_COUNTS["p1"]
            Y2 = session.operator(points_2d, kernel="gaussian") @ W
            assert INSPECTION_COUNTS["p1"] == before
            assert session.stats.p1_builds == 1
            assert session.stats.hmatrix_hits >= 1
        np.testing.assert_array_equal(Y1, Y2)

    def test_kernel_change_reuses_p1(self, points_2d):
        """P2 reuse: a new kernel/bacc re-runs phase 2 against cached P1."""
        with Session(plan=PLAN_32) as session:
            session.operator(points_2d, kernel="gaussian").materialize()
            p1_before = INSPECTION_COUNTS["p1"]
            session.operator(points_2d, kernel="laplace").materialize()
            session.operator(points_2d, kernel="gaussian",
                             bacc=1e-3).materialize()
            assert INSPECTION_COUNTS["p1"] == p1_before
            assert session.stats.p1_builds == 1
            assert session.stats.p1_hits == 2
            assert session.stats.p2_builds == 3

    def test_different_points_rebuild(self, points_2d):
        other = np.random.default_rng(13).random(points_2d.shape)
        with Session(plan=PLAN_32) as session:
            session.operator(points_2d).materialize()
            session.operator(other).materialize()
            assert session.stats.p1_builds == 2

    def test_lru_eviction(self, points_2d):
        other = np.random.default_rng(14).random((200, 2))
        with Session(plan=PLAN_32, p1_cache_size=1,
                     hmatrix_cache_size=1) as session:
            session.operator(points_2d).materialize()
            session.operator(other).materialize()   # evicts points_2d
            session.operator(points_2d).materialize()
            assert session.stats.p1_builds == 3

    def test_session_threads_match_serial(self, points_2d):
        W = np.random.default_rng(15).random((len(points_2d), 4))
        with Session(plan=PLAN_32) as serial, \
                Session(plan=PLAN_32, num_threads=3) as threaded:
            np.testing.assert_allclose(
                serial.operator(points_2d) @ W,
                threaded.operator(points_2d) @ W, atol=1e-12)

    def test_points_fingerprint_content_keyed(self, points_2d):
        assert points_fingerprint(points_2d) == \
            points_fingerprint(points_2d.copy())
        assert points_fingerprint(points_2d) != \
            points_fingerprint(points_2d + 1e-9)

    def test_rejects_non_plan(self, points_2d):
        with Session() as session, \
                pytest.raises(TypeError, match="PlanConfig"):
            session.operator(points_2d, plan={"leaf_size": 32})


class TestShimEquivalence:
    """Legacy free functions must match the new API to < 1e-12."""

    def test_inspector_shim_vs_plan_api(self, points_2d, gaussian_kernel):
        H_shim = inspector(points_2d, kernel=gaussian_kernel, leaf_size=32,
                           bacc=1e-6, p=4)
        K_new = KernelOperator.from_points(points_2d, kernel=gaussian_kernel,
                                           plan=PLAN_32)
        W = np.random.default_rng(16).random((len(points_2d), 8))
        assert np.abs(matmul(H_shim, W) - K_new @ W).max() < 1e-12

    def test_inspector_shim_accepts_plan(self, points_2d, gaussian_kernel):
        H = inspector(points_2d, kernel=gaussian_kernel, plan=PLAN_32)
        W = np.random.default_rng(17).random((len(points_2d), 2))
        K = KernelOperator(H)
        np.testing.assert_array_equal(K @ W, H.matmul(W))

    def test_inspector_shim_rejects_plan_plus_kwargs(self, points_2d):
        with pytest.raises(TypeError, match="not both"):
            inspector(points_2d, plan=PLAN_32, leaf_size=16)

    def test_inspector_shim_validates_kwargs(self, points_2d):
        with pytest.raises(TypeError, match="leaf_sizee"):
            inspector(points_2d, leaf_sizee=32)
        with pytest.raises(ValueError, match="structure"):
            inspector(points_2d, structure="h5")

    def test_executor_shims_vs_session(self, hmatrix_2d):
        W = np.random.default_rng(18).random((hmatrix_2d.dim, 8))
        with Session() as session:
            Y_session = session.matmul(hmatrix_2d, W)
        assert np.abs(matmul(hmatrix_2d, W) - Y_session).max() < 1e-12
        assert np.abs(matmul_many(hmatrix_2d, W) - Y_session).max() < 1e-12


class TestOperatorPersistence:
    def test_save_load_round_trip(self, operator_2d, tmp_path):
        path = tmp_path / "op.npz"
        save_hmatrix(operator_2d, path)         # accepts the facade
        loaded = load_operator(path)
        assert isinstance(loaded, KernelOperator)
        W = np.random.default_rng(19).random((operator_2d.shape[0], 4))
        np.testing.assert_allclose(loaded @ W, operator_2d @ W, atol=1e-12)

    def test_save_lazy_operator_materializes(self, points_2d, tmp_path):
        K = KernelOperator.from_points(points_2d, kernel="gaussian",
                                       plan=PLAN_32)
        path = save_hmatrix(K, tmp_path / "lazy.npz")
        assert K.materialized and path.exists()

    def test_save_rejects_non_hmatrix(self, tmp_path):
        with pytest.raises(TypeError, match="HMatrix"):
            save_hmatrix(np.eye(3), tmp_path / "bad.npz")
        with pytest.raises(TypeError, match="HMatrix"):
            # Unfit model: .hmatrix exists but is still None.
            save_hmatrix(KernelRidgeRegression(), tmp_path / "bad.npz")


class TestSolversThroughOperators:
    def test_cg_accepts_composed_operator(self, operator_2d, dense_2d):
        n = operator_2d.shape[0]
        A = operator_2d.shifted(0.5)
        x_true = np.random.default_rng(20).random(n)
        res = conjugate_gradient(A, A @ x_true, tol=1e-12, max_iter=800)
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, atol=1e-6)

    def test_power_iteration_infers_n(self, operator_2d, dense_2d):
        lam, _ = power_iteration(operator_2d.shifted(1.0), tol=1e-10)
        expect = np.linalg.eigvalsh(dense_2d + np.eye(len(dense_2d))).max()
        assert lam == pytest.approx(expect, rel=1e-4)

    def test_estimate_trace_infers_n(self, operator_2d, dense_2d):
        est = estimate_trace(operator_2d, num_probes=256, seed=1)
        assert est == pytest.approx(np.trace(dense_2d), rel=0.15)

    def test_estimate_trace_requires_n_for_callable(self):
        with pytest.raises(ValueError, match="shape"):
            estimate_trace(lambda Z: Z)

    def test_ridge_exposes_composed_operator(self, rng):
        from repro.api.operator import ShiftedOperator

        X = rng.random((300, 2))
        y = rng.normal(size=300)
        model = KernelRidgeRegression(lam=1e-1, bacc=1e-7,
                                      leaf_size=32).fit(X, y)
        assert isinstance(model.operator_, ShiftedOperator)
        assert model.training_residual(y) < 1e-5

    def test_ridge_with_session_skips_p1_on_refit(self, rng):
        X = rng.random((300, 2))
        y = rng.normal(size=300)
        with Session() as session:
            plan = PlanConfig(structure="h2-b", bacc=1e-7, leaf_size=32)
            m1 = KernelRidgeRegression(lam=1e-1, plan=plan,
                                       session=session).fit(X, y)
            before = INSPECTION_COUNTS["p1"]
            m2 = KernelRidgeRegression(lam=1e-2, plan=plan,
                                       session=session).fit(X, y)
            assert INSPECTION_COUNTS["p1"] == before
        assert m1.alpha_ is not None and m2.alpha_ is not None

    def test_ridge_rejects_plan_plus_kwargs(self):
        with pytest.raises(TypeError, match="not both"):
            KernelRidgeRegression(plan=PlanConfig(), tau=0.5)


class TestCLIPolicyFlags:
    @pytest.fixture()
    def stored_hmatrix(self, tmp_path):
        from repro.cli import main

        pts = tmp_path / "pts.npy"
        np.save(pts, np.random.default_rng(21).random((300, 2)))
        h = tmp_path / "h.npz"
        main(["inspect", str(pts), "-o", str(h), "--leaf-size", "32",
              "--bandwidth", "0.5"])
        return h

    def test_evaluate_policy_flags(self, stored_hmatrix, tmp_path, capsys):
        from repro.cli import main

        y_b = tmp_path / "yb.npy"
        y_o = tmp_path / "yo.npy"
        rc = main(["evaluate", str(stored_hmatrix), "-q", "4",
                   "--order", "batched", "--threads", "2",
                   "--q-chunk", "64", "-o", str(y_b)])
        assert rc == 0
        assert ("order=batched, backend=thread, threads=2"
                in capsys.readouterr().out)
        rc = main(["evaluate", str(stored_hmatrix), "-q", "4",
                   "--order", "original", "-o", str(y_o)])
        assert rc == 0
        np.testing.assert_allclose(np.load(y_b), np.load(y_o), atol=1e-12)

    def test_evaluate_rejects_bad_order(self, stored_hmatrix):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["evaluate", str(stored_hmatrix), "--order", "bfs"])


class TestSessionPolicyRegression:
    """Satellite fix: an explicitly passed policy object is never silently
    swapped for the session default (`policy or self.policy` was the bug
    pattern; identity-against-None is the contract)."""

    def test_explicit_policy_reaches_executor(self, hmatrix_2d):
        captured = {}
        with Session(plan=PLAN_32) as session:
            real = session._executor.matmul

            def spy(H, W, policy=None):
                captured["policy"] = policy
                return real(H, W, policy=policy)

            session._executor.matmul = spy
            explicit = ExecutionPolicy(order="original", q_chunk=32)
            W = np.random.default_rng(0).random((hmatrix_2d.dim, 2))
            session.matmul(hmatrix_2d, W, policy=explicit)
        assert captured["policy"] == explicit
        assert captured["policy"] is not session.policy

    def test_explicit_policy_with_overrides(self, hmatrix_2d):
        captured = {}
        with Session(plan=PLAN_32, num_threads=2) as session:
            real = session._executor.matmul

            def spy(H, W, policy=None):
                captured["policy"] = policy
                return real(H, W, policy=policy)

            session._executor.matmul = spy
            explicit = ExecutionPolicy(order="original")
            W = np.random.default_rng(0).random((hmatrix_2d.dim, 2))
            session.matmul(hmatrix_2d, W, policy=explicit, q_chunk=64)
        # overrides apply on top of the explicit policy, not the default
        assert captured["policy"].order == "original"
        assert captured["policy"].q_chunk == 64
        assert captured["policy"].num_threads is None  # not the session's 2

    def test_default_policy_still_used_when_omitted(self, hmatrix_2d):
        captured = {}
        with Session(plan=PLAN_32, num_threads=2) as session:
            real = session._executor.matmul

            def spy(H, W, policy=None):
                captured["policy"] = policy
                return real(H, W, policy=policy)

            session._executor.matmul = spy
            W = np.random.default_rng(0).random((hmatrix_2d.dim, 2))
            session.matmul(hmatrix_2d, W)
        assert captured["policy"] == session.policy


class TestPointsFingerprintMemo:
    """Satellite fix: repeated fingerprints of the same array skip the
    full-buffer SHA-256 (measurable per-request overhead on the serving
    path) while still detecting mutation and content changes."""

    def test_stable_and_cached(self):
        from repro.api import session as sess_mod

        pts = np.random.default_rng(0).random((512, 3))
        fp1 = points_fingerprint(pts)
        assert id(pts) in sess_mod._FP_CACHE
        fp2 = points_fingerprint(pts)
        assert fp1 == fp2

    def test_cache_hit_skips_full_hash(self, monkeypatch):
        from repro.api import session as sess_mod

        pts = np.random.default_rng(1).random((512, 3))
        fp1 = points_fingerprint(pts)
        calls = []

        def forbidden(*a, **k):
            calls.append(1)
            raise AssertionError("full SHA-256 ran on a memo hit")

        monkeypatch.setattr(sess_mod.hashlib, "sha256", forbidden)
        assert points_fingerprint(pts) == fp1
        assert not calls

    def test_equal_content_different_objects_equal_fp(self):
        pts = np.random.default_rng(2).random((256, 2))
        assert points_fingerprint(pts) == points_fingerprint(pts.copy())

    def test_mutation_detected(self):
        pts = np.random.default_rng(3).random((256, 2))
        fp1 = points_fingerprint(pts)
        pts[0, 0] += 1.0  # row 0 is always in the sampled stripe
        assert points_fingerprint(pts) != fp1

    def test_non_ndarray_input_still_works(self):
        pts = [[0.0, 1.0], [1.0, 0.0], [0.5, 0.5]]
        assert points_fingerprint(pts) == points_fingerprint(np.array(pts))

    def test_dtype_normalization_unchanged(self):
        pts64 = np.random.default_rng(4).random((128, 2))
        pts32 = pts64.astype(np.float32)
        # float32 content hashes as its float64 view, like before the memo
        assert (points_fingerprint(pts32)
                == points_fingerprint(pts32.astype(np.float64)))

    def test_cache_entry_dropped_on_gc(self):
        from repro.api import session as sess_mod

        pts = np.random.default_rng(5).random((64, 2))
        points_fingerprint(pts)
        key = id(pts)
        assert key in sess_mod._FP_CACHE
        del pts
        import gc

        gc.collect()
        assert key not in sess_mod._FP_CACHE

    def test_cache_bounded(self):
        from repro.api import session as sess_mod

        keep = [np.random.default_rng(i).random((8, 2))
                for i in range(sess_mod._FP_CACHE_MAX + 16)]
        for a in keep:
            points_fingerprint(a)
        assert len(sess_mod._FP_CACHE) <= sess_mod._FP_CACHE_MAX
