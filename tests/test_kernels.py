"""Unit tests for the kernel functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.kernels import (
    GaussianKernel,
    InverseDistanceKernel,
    LaplaceKernel,
    Matern32Kernel,
    PolynomialKernel,
    get_kernel,
    pairwise_sq_distances,
)


def finite_points(n, d):
    return arrays(
        np.float64, (n, d),
        elements=st.floats(-10, 10, allow_nan=False, allow_infinity=False),
    )


class TestPairwiseDistances:
    def test_matches_naive(self, rng):
        X = rng.random((17, 3))
        Y = rng.random((9, 3))
        d2 = pairwise_sq_distances(X, Y)
        naive = np.array([[np.sum((x - y) ** 2) for y in Y] for x in X])
        np.testing.assert_allclose(d2, naive, atol=1e-12)

    def test_self_distance_zero(self, rng):
        X = rng.random((10, 4))
        d2 = pairwise_sq_distances(X, X)
        assert np.allclose(np.diag(d2), 0.0, atol=1e-10)

    def test_never_negative_despite_roundoff(self, rng):
        X = 1e8 + rng.random((50, 2))  # large offsets provoke cancellation
        d2 = pairwise_sq_distances(X, X)
        assert (d2 >= 0).all()

    def test_dimension_mismatch_raises(self, rng):
        with pytest.raises(ValueError, match="incompatible"):
            pairwise_sq_distances(rng.random((4, 2)), rng.random((4, 3)))

    @given(X=finite_points(6, 2), Y=finite_points(5, 2))
    @settings(max_examples=25, deadline=None)
    def test_symmetry_property(self, X, Y):
        d_xy = pairwise_sq_distances(X, Y)
        d_yx = pairwise_sq_distances(Y, X)
        np.testing.assert_allclose(d_xy, d_yx.T, atol=1e-9)


class TestGaussian:
    def test_diagonal_is_one(self, rng):
        X = rng.random((20, 3))
        K = GaussianKernel(bandwidth=2.0).matrix(X)
        np.testing.assert_allclose(np.diag(K), 1.0)

    def test_symmetric(self, rng):
        X = rng.random((25, 2))
        K = GaussianKernel(bandwidth=1.0).matrix(X)
        np.testing.assert_allclose(K, K.T)

    def test_values_in_unit_interval(self, rng):
        K = GaussianKernel(bandwidth=0.7).matrix(rng.random((30, 5)))
        assert (K > 0).all() and (K <= 1.0 + 1e-15).all()

    def test_positive_definite_with_regularization(self, rng):
        X = rng.random((40, 2))
        K = GaussianKernel(bandwidth=0.5, regularization=1e-8).matrix(X)
        eigs = np.linalg.eigvalsh(K)
        assert eigs.min() > 0

    def test_bandwidth_controls_decay(self):
        X = np.array([[0.0], [1.0]])
        wide = GaussianKernel(bandwidth=10.0).matrix(X)[0, 1]
        narrow = GaussianKernel(bandwidth=0.1).matrix(X)[0, 1]
        assert wide > narrow

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            GaussianKernel(bandwidth=0.0)
        with pytest.raises(ValueError):
            GaussianKernel(bandwidth=-1.0)

    def test_invalid_regularization(self):
        with pytest.raises(ValueError):
            GaussianKernel(regularization=-1e-3)


class TestInverseDistance:
    def test_matches_formula(self, rng):
        X = rng.random((10, 3))
        Y = rng.random((8, 3)) + 5.0
        K = InverseDistanceKernel().block(X, Y)
        expect = 1.0 / np.sqrt(((X[:, None] - Y[None]) ** 2).sum(-1))
        np.testing.assert_allclose(K, expect, rtol=1e-10)

    def test_coincident_points_use_diagonal_value(self):
        X = np.zeros((3, 2))
        K = InverseDistanceKernel(diagonal_value=7.5).block(X, X)
        np.testing.assert_allclose(K, 7.5)

    def test_decreasing_with_distance(self):
        X = np.array([[0.0, 0.0]])
        Y = np.array([[1.0, 0.0], [2.0, 0.0], [4.0, 0.0]])
        K = InverseDistanceKernel().block(X, Y)[0]
        assert K[0] > K[1] > K[2]


class TestLaplaceMaternPolynomial:
    def test_laplace_diagonal_one(self, rng):
        K = LaplaceKernel(bandwidth=1.5).matrix(rng.random((15, 2)))
        np.testing.assert_allclose(np.diag(K), 1.0)

    def test_laplace_slower_decay_than_gaussian(self):
        X = np.array([[0.0], [3.0]])
        lap = LaplaceKernel(bandwidth=1.0).matrix(X)[0, 1]
        gau = GaussianKernel(bandwidth=1.0).matrix(X)[0, 1]
        assert lap > gau

    def test_matern_diagonal_one(self, rng):
        K = Matern32Kernel(bandwidth=1.0).matrix(rng.random((12, 3)))
        np.testing.assert_allclose(np.diag(K), 1.0)

    def test_matern_between_laplace_and_gaussian(self):
        X = np.array([[0.0], [2.0]])
        lap = LaplaceKernel(1.0).matrix(X)[0, 1]
        mat = Matern32Kernel(1.0).matrix(X)[0, 1]
        gau = GaussianKernel(1.0).matrix(X)[0, 1]
        assert gau < mat < lap or gau < mat  # matern-3/2 smoother than laplace

    def test_polynomial_matches_formula(self, rng):
        X, Y = rng.random((6, 4)), rng.random((5, 4))
        K = PolynomialKernel(degree=3, offset=0.5).block(X, Y)
        np.testing.assert_allclose(K, (X @ Y.T + 0.5) ** 3, rtol=1e-12)

    def test_polynomial_invalid_degree(self):
        with pytest.raises(ValueError):
            PolynomialKernel(degree=0)


class TestRegistry:
    @pytest.mark.parametrize("name", [
        "gaussian", "laplace", "inverse_distance", "matern32", "polynomial",
    ])
    def test_lookup(self, name):
        k = get_kernel(name)
        assert k.name == name

    def test_case_insensitive(self):
        assert get_kernel("GAUSSIAN").name == "gaussian"

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            get_kernel("nope")

    def test_params_passed_through(self):
        k = get_kernel("gaussian", bandwidth=3.0)
        assert k.bandwidth == 3.0

    def test_identity_equality(self):
        assert (get_kernel("gaussian", bandwidth=2.0)
                == get_kernel("gaussian", bandwidth=2.0))
        assert (get_kernel("gaussian", bandwidth=2.0)
                != get_kernel("gaussian", bandwidth=3.0))
        assert get_kernel("gaussian") != get_kernel("laplace")

    def test_kernels_hashable(self):
        s = {get_kernel("gaussian"), get_kernel("gaussian"), get_kernel("laplace")}
        assert len(s) == 2
