"""Executor coverage: serial vs thread-pool vs batched agreement, streaming
chunks, the batch cost-model gate, and Executor lifecycle semantics."""

import numpy as np
import pytest

from repro import Executor, matmul, matmul_many, relative_error
from repro.codegen import (
    batch_occupancy,
    build_ir,
    decide_lowering,
    generate_batched_evaluator,
    lower_batched,
)
from repro.core.evaluation import evaluate_reference
from repro.runtime.tasks import matrox_batched_phases, matrox_phases


@pytest.fixture(scope="module")
def W_2d(hmatrix_2d):
    return np.random.default_rng(42).random((hmatrix_2d.dim, 8))


class TestOrderAgreement:
    def test_serial_threaded_batched_agree(self, hmatrix_2d, W_2d):
        """The acceptance bar: all three paths within 1e-12 relative."""
        y_serial = hmatrix_2d.matmul(W_2d, order="original")
        y_batched = hmatrix_2d.matmul(W_2d, order="batched")
        with Executor(num_threads=4) as ex:
            y_threaded = ex.matmul(hmatrix_2d, W_2d, order="original")
            y_batched2 = ex.matmul(hmatrix_2d, W_2d, order="batched")
        assert relative_error(y_threaded, y_serial) < 1e-12
        assert relative_error(y_batched, y_serial) < 1e-12
        assert relative_error(y_batched2, y_serial) < 1e-12

    def test_batched_matches_reference_numerics(self, hmatrix_2d, W_2d):
        ev = generate_batched_evaluator(hmatrix_2d.cds)
        ref = evaluate_reference(hmatrix_2d.factors, W_2d)
        np.testing.assert_allclose(ev(W_2d), ref, atol=1e-10)

    def test_q1_vector_and_column(self, hmatrix_2d):
        w = np.random.default_rng(1).random(hmatrix_2d.dim)
        y_serial = hmatrix_2d.matmul(w)
        y_batched = hmatrix_2d.matmul(w, order="batched")
        assert y_batched.shape == (hmatrix_2d.dim,)
        assert relative_error(y_batched, y_serial) < 1e-12
        y_col = hmatrix_2d.matmul(w[:, None], order="batched")
        np.testing.assert_allclose(y_col[:, 0], y_batched, atol=1e-14)

    def test_wide_q_streams_through_chunks(self, hmatrix_2d):
        """Q > 64 exercises the chunked-Q streaming path end to end."""
        W = np.random.default_rng(2).random((hmatrix_2d.dim, 100))
        ev = generate_batched_evaluator(hmatrix_2d.cds, q_chunk=32)
        one_pass = generate_batched_evaluator(hmatrix_2d.cds, q_chunk=None)
        np.testing.assert_allclose(ev(W), one_pass(W), atol=1e-12)
        y_serial = hmatrix_2d.matmul(W)
        assert relative_error(hmatrix_2d.matmul(W, order="batched"),
                              y_serial) < 1e-12

    def test_zero_column_rhs(self, hmatrix_2d):
        y = hmatrix_2d.matmul(np.zeros((hmatrix_2d.dim, 0)), order="batched")
        assert y.shape == (hmatrix_2d.dim, 0)

    def test_uneven_chunk_remainder(self, hmatrix_2d):
        W = np.random.default_rng(3).random((hmatrix_2d.dim, 17))
        ev = generate_batched_evaluator(hmatrix_2d.cds, q_chunk=7)
        np.testing.assert_allclose(
            ev(W), evaluate_reference(hmatrix_2d.factors, W), atol=1e-10)


class TestMatmulMany:
    def test_wide_array_equals_matmul(self, hmatrix_2d):
        W = np.random.default_rng(4).random((hmatrix_2d.dim, 80))
        got = matmul_many(hmatrix_2d, W, q_chunk=32)
        want = hmatrix_2d.matmul(W, order="batched")
        np.testing.assert_allclose(got, want, atol=1e-12)

    def test_narrow_array_single_pass(self, hmatrix_2d):
        W = np.random.default_rng(5).random((hmatrix_2d.dim, 4))
        np.testing.assert_allclose(
            matmul_many(hmatrix_2d, W),
            hmatrix_2d.matmul(W, order="batched"), atol=1e-14)

    def test_panel_stream_returns_list(self, hmatrix_2d):
        rng = np.random.default_rng(6)
        panels = [rng.random((hmatrix_2d.dim, q)) for q in (1, 5, 70)]
        outs = matmul_many(hmatrix_2d, panels, q_chunk=32)
        assert isinstance(outs, list) and len(outs) == 3
        for w, y in zip(panels, outs, strict=True):
            assert relative_error(y, hmatrix_2d.matmul(w)) < 1e-12


class TestBatchGate:
    def test_hss_gate_rejects_and_falls_back(self, points_2d, gaussian_kernel):
        from repro import inspector
        H = inspector(points_2d, kernel=gaussian_kernel, structure="hss",
                      leaf_size=32, bacc=1e-6, seed=0)
        assert not H.evaluator.decision.batch
        assert H.batched_evaluator is None
        W = np.random.default_rng(7).random((H.dim, 3))
        # order="batched" must still work — identical per-block fallback.
        np.testing.assert_array_equal(
            H.matmul(W, order="batched"), H.matmul(W, order="original"))

    def test_h2_gate_accepts(self, hmatrix_2d):
        assert hmatrix_2d.evaluator.decision.batch
        assert hmatrix_2d.batched_evaluator is not None
        assert hmatrix_2d.batched_evaluator is hmatrix_2d.batched_evaluator

    def test_occupancy_and_lowering_annotation(self, hmatrix_2d):
        cds = hmatrix_2d.cds
        ir = build_ir(cds.factors, coarsenset=cds.coarsenset,
                      near_blockset=cds.near_blockset,
                      far_blockset=cds.far_blockset)
        assert batch_occupancy(ir) > 2.0
        d = decide_lowering(ir)
        assert d.batch
        d2 = lower_batched(ir, d)
        assert d2.batch
        for loop in ("near", "upward", "coupling", "downward"):
            assert ir.loop(loop).lowered_to == "batched"

    def test_summary_reports_batch(self, hmatrix_2d):
        assert hmatrix_2d.summary()["lowering"]["batch"] is True

    def test_save_load_preserves_batch_gate(self, hmatrix_2d, tmp_path):
        from repro import load_hmatrix, save_hmatrix
        save_hmatrix(hmatrix_2d, tmp_path / "h.npz")
        H2 = load_hmatrix(tmp_path / "h.npz")
        assert H2.evaluator.decision.batch == hmatrix_2d.evaluator.decision.batch
        W = np.random.default_rng(8).random((H2.dim, 4))
        assert relative_error(H2.matmul(W, order="batched"),
                              hmatrix_2d.matmul(W, order="batched")) < 1e-12


class TestShapeBuckets:
    def test_gather_matches_accessors(self, hmatrix_2d):
        cds = hmatrix_2d.cds
        for bucket in cds.near_buckets():
            stack = bucket.gather(cds.near_buf)
            assert stack.shape == (bucket.batch, *bucket.shape)
            for b, (i, j) in enumerate(bucket.keys):
                np.testing.assert_array_equal(stack[b], cds.near(i, j))

    def test_buckets_cover_all_interactions(self, hmatrix_2d):
        cds = hmatrix_2d.cds
        near_keys = [k for b in cds.near_buckets() for k in b.keys]
        assert sorted(near_keys) == sorted(cds.near_visit_order())
        far_keys = [k for b in cds.far_buckets() for k in b.keys]
        assert sorted(far_keys) == sorted(cds.far_visit_order())

    def test_level_buckets_partition_basis_nodes(self, hmatrix_2d):
        cds = hmatrix_2d.cds
        seen = [v for lvl in cds.basis_level_buckets()
                for b in lvl for v in b.keys]
        assert sorted(seen) == sorted(cds.basis_nodes())
        assert cds.bucket_occupancy() > 0


class TestBatchedPhases:
    def test_flops_match_per_block_schedule(self, hmatrix_2d):
        """The batched schedule performs the same arithmetic."""
        cds = hmatrix_2d.cds
        q = 16
        serial = sum(p.total_flops() for p in matrox_phases(cds, q))
        batched = sum(p.total_flops()
                      for p in matrox_batched_phases(cds, q))
        assert batched == pytest.approx(serial)

    def test_all_phases_are_blas(self, hmatrix_2d):
        for p in matrox_batched_phases(hmatrix_2d.cds, 8):
            assert p.kind == "blas"

    def test_q_chunk_repeats_schedule(self, hmatrix_2d):
        cds = hmatrix_2d.cds
        base = matrox_batched_phases(cds, 16)
        chunked = matrox_batched_phases(cds, 40, q_chunk=16)
        assert len(chunked) == 3 * len(base)
        total = sum(p.total_flops() for p in chunked)
        assert total == pytest.approx(
            sum(p.total_flops() for p in matrox_batched_phases(cds, 40)))

    def test_simulated_batched_rung(self, hmatrix_2d):
        from repro.baselines import MatRoxSystem
        from repro.runtime import HASWELL
        mx = MatRoxSystem(hmatrix_2d)
        bat = mx.simulate(hmatrix_2d.factors, 64, HASWELL, p=4,
                          rung="+batched")
        seq = mx.simulate(hmatrix_2d.factors, 64, HASWELL, p=4,
                          rung="cds-seq")
        assert bat.time_s < seq.time_s


class TestExecutorLifecycle:
    def test_context_manager_closes_pool(self, hmatrix_2d, W_2d):
        ex = Executor(num_threads=3)
        assert ex._pool is not None
        with ex as handle:
            assert handle is ex
            handle.matmul(hmatrix_2d, W_2d)
        assert ex._pool is None

    def test_close_is_idempotent(self):
        ex = Executor(num_threads=2)
        ex.close()
        ex.close()
        assert ex._pool is None

    def test_matmul_after_close_runs_serially(self, hmatrix_2d, W_2d):
        ex = Executor(num_threads=2)
        ex.close()
        np.testing.assert_allclose(
            ex.matmul(hmatrix_2d, W_2d), hmatrix_2d.matmul(W_2d), atol=1e-14)

    def test_serial_executor_has_no_pool(self):
        for nt in (None, 1):
            assert Executor(num_threads=nt)._pool is None

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError, match="num_threads"):
            Executor(num_threads=0)

    def test_module_level_matmul_threaded(self, hmatrix_2d, W_2d):
        y = matmul(hmatrix_2d, W_2d, num_threads=3)
        np.testing.assert_allclose(y, hmatrix_2d.matmul(W_2d), atol=1e-12)
