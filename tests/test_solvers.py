"""Tests for CG, kernel ridge regression, and spectral estimators."""

import numpy as np
import pytest

from repro.kernels import GaussianKernel
from repro.solvers import (
    KernelRidgeRegression,
    conjugate_gradient,
    estimate_trace,
    power_iteration,
)


def spd_matrix(rng, n, cond=10.0):
    Q, _ = np.linalg.qr(rng.normal(size=(n, n)))
    eigs = np.linspace(1.0, cond, n)
    return (Q * eigs) @ Q.T


class TestConjugateGradient:
    def test_solves_spd_system(self, rng):
        A = spd_matrix(rng, 30)
        x_true = rng.normal(size=30)
        res = conjugate_gradient(lambda v: A @ v, A @ x_true, tol=1e-12)
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, atol=1e-8)

    def test_multiple_rhs(self, rng):
        A = spd_matrix(rng, 25)
        X_true = rng.normal(size=(25, 4))
        res = conjugate_gradient(lambda V: A @ V, A @ X_true, tol=1e-12)
        assert res.converged
        np.testing.assert_allclose(res.x, X_true, atol=1e-7)

    def test_zero_rhs(self):
        res = conjugate_gradient(lambda v: v, np.zeros(10))
        assert res.converged and res.iterations == 0
        np.testing.assert_array_equal(res.x, np.zeros(10))

    def test_residual_history_decreases_overall(self, rng):
        A = spd_matrix(rng, 40, cond=100.0)
        b = rng.normal(size=40)
        res = conjugate_gradient(lambda v: A @ v, b, tol=1e-10)
        assert res.residual_history[-1] < res.residual_history[0]

    def test_max_iter_respected(self, rng):
        A = spd_matrix(rng, 50, cond=1e6)
        b = rng.normal(size=50)
        res = conjugate_gradient(lambda v: A @ v, b, tol=1e-15, max_iter=3)
        assert not res.converged
        assert res.iterations == 3

    def test_non_spd_detected(self, rng):
        A = -np.eye(10)
        res = conjugate_gradient(lambda v: A @ v, rng.normal(size=10))
        assert not res.converged

    def test_warm_start(self, rng):
        A = spd_matrix(rng, 20)
        x_true = rng.normal(size=20)
        b = A @ x_true
        cold = conjugate_gradient(lambda v: A @ v, b, tol=1e-10)
        warm = conjugate_gradient(lambda v: A @ v, b,
                                  x0=x_true + 1e-6, tol=1e-10)
        assert warm.iterations <= cold.iterations

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            conjugate_gradient(lambda v: v, np.ones(4), tol=0.0)
        with pytest.raises(ValueError):
            conjugate_gradient(lambda v: v, np.ones(4), x0=np.ones(5))


class TestKernelRidgeRegression:
    def test_matches_dense_solution(self, rng):
        n = 400
        X = rng.random((n, 2))
        y = np.sin(4 * X[:, 0]) + 0.1 * rng.normal(size=n)
        kernel = GaussianKernel(bandwidth=0.5)
        lam = 1e-2

        model = KernelRidgeRegression(kernel=kernel, lam=lam,
                                      structure="h2-geometric", bacc=1e-9,
                                      leaf_size=32, cg_tol=1e-10).fit(X, y)
        K = kernel.matrix(X)
        alpha_dense = np.linalg.solve(K + lam * np.eye(n), y)
        rel = np.linalg.norm(model.alpha_ - alpha_dense) / np.linalg.norm(
            alpha_dense)
        assert rel < 1e-3

    def test_predict_on_training_points(self, rng):
        n = 300
        X = rng.random((n, 2))
        y = X[:, 0] ** 2
        model = KernelRidgeRegression(kernel=GaussianKernel(0.5), lam=1e-3,
                                      structure="h2-geometric",
                                      bacc=1e-8, leaf_size=32).fit(X, y)
        pred = model.predict(X)
        # Ridge smoothing: predictions close to targets, not exact.
        assert np.corrcoef(pred, y)[0, 1] > 0.99

    def test_generalization_on_new_points(self, rng):
        X = rng.random((500, 1))
        y = np.sin(6 * X[:, 0])
        model = KernelRidgeRegression(kernel=GaussianKernel(0.3), lam=1e-4,
                                      structure="hss", bacc=1e-8,
                                      leaf_size=32).fit(X, y)
        X_test = rng.random((50, 1))
        pred = model.predict(X_test)
        err = np.abs(pred - np.sin(6 * X_test[:, 0]))
        assert np.median(err) < 0.05

    def test_training_residual_small(self, rng):
        X = rng.random((300, 2))
        y = rng.normal(size=300)
        model = KernelRidgeRegression(kernel=GaussianKernel(0.5), lam=1e-1,
                                      bacc=1e-7, leaf_size=32).fit(X, y)
        assert model.training_residual(y) < 1e-5

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            KernelRidgeRegression().predict(np.zeros((3, 2)))

    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            KernelRidgeRegression(lam=0.0)

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            KernelRidgeRegression().fit(rng.random((10, 2)),
                                        rng.random(11))


class TestEstimators:
    def test_power_iteration_dominant_eig(self, rng):
        A = spd_matrix(rng, 40, cond=50.0)
        lam, v = power_iteration(lambda x: A @ x, 40, tol=1e-10)
        expect = np.linalg.eigvalsh(A).max()
        assert lam == pytest.approx(expect, rel=1e-4)
        np.testing.assert_allclose(A @ v, lam * v, atol=1e-3 * lam)

    def test_power_iteration_zero_operator(self):
        lam, _v = power_iteration(lambda x: np.zeros_like(x), 10)
        assert lam == 0.0

    def test_trace_estimator_unbiased(self, rng):
        A = spd_matrix(rng, 60)
        est = estimate_trace(lambda Z: A @ Z, 60, num_probes=512, seed=0)
        assert est == pytest.approx(np.trace(A), rel=0.1)

    def test_trace_on_hmatrix(self, hmatrix_2d, points_2d, gaussian_kernel):
        est = estimate_trace(lambda Z: hmatrix_2d.matmul(Z),
                             hmatrix_2d.dim, num_probes=256, seed=1)
        exact = np.trace(gaussian_kernel.matrix(points_2d))
        assert est == pytest.approx(exact, rel=0.15)
